#include "runtime/runtime.hpp"

#include <mutex>

#include "common/check.hpp"

namespace pred {

Runtime::Runtime(RuntimeConfig config) : config_(config) {
  PRED_CHECK(config_.tracking_threshold >= 1);
  PRED_CHECK(config_.prediction_threshold >= config_.tracking_threshold);
  PRED_CHECK(config_.sample_window >= 1);
  PRED_CHECK(config_.sample_interval >= config_.sample_window);
  PRED_CHECK(config_.geometry.line_size % config_.geometry.word_size == 0);
}

Runtime::~Runtime() = default;

ShadowSpace* Runtime::register_region(Address base, std::size_t size) {
  std::size_t slot = num_regions_.load(std::memory_order_acquire);
  PRED_CHECK(slot < kMaxRegions);
  regions_[slot] =
      std::make_unique<ShadowSpace>(base, size, config_.geometry);
  ShadowSpace* region = regions_[slot].get();
  num_regions_.store(slot + 1, std::memory_order_release);
  return region;
}

ShadowSpace* Runtime::find_region(Address addr) const {
  const std::size_t n = num_regions_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    if (regions_[i]->contains(addr)) return regions_[i].get();
  }
  return nullptr;
}

ThreadId Runtime::register_thread() {
  return next_thread_.fetch_add(1, std::memory_order_relaxed);
}

void Runtime::handle_access(Address addr, AccessType type, ThreadId tid,
                            std::size_t size) {
  if (config_.instrument_mode == InstrumentMode::kWritesOnly &&
      type == AccessType::kRead) {
    return;
  }
  ShadowSpace* region = find_region(addr);
  if (!region) return;

  const std::size_t ws = config_.geometry.word_size;
  const std::size_t first_word = addr / ws;
  const std::size_t last_word = (addr + (size ? size : 1) - 1) / ws;
  if (first_word == last_word) [[likely]] {
    handle_access_one_word(*region, addr, type, tid);
    return;
  }
  // Rare: an access spanning words (e.g. an unaligned 8-byte store) is split
  // so each touched word's histogram entry is updated.
  for (std::size_t w = first_word; w <= last_word; ++w) {
    Address piece = (w == first_word) ? addr : w * ws;
    if (region->contains(piece)) {
      handle_access_one_word(*region, piece, type, tid);
    }
  }
}

void Runtime::handle_access_one_word(ShadowSpace& region, Address addr,
                                     AccessType type, ThreadId tid) {
  const std::size_t idx = region.line_index(addr);
  CacheTracker* track = region.tracker(idx);
  if (!track) {
    // Fast path of Figure 1: count writes only, no detailed tracking until
    // the line crosses TrackingThreshold.
    if (type == AccessType::kWrite) {
      const std::uint64_t w =
          region.writes(idx).fetch_add(1, std::memory_order_relaxed) + 1;
      if (w >= config_.tracking_threshold) escalate(region, idx);
    }
    return;
  }

  const bool sampled = track->handle_access(
      addr, type, tid, config_.sample_window, config_.sample_interval);
  if (sampled && track->has_virtual_lines()) {
    track->update_virtual_lines(addr, type, tid);
  }
  if (type == AccessType::kWrite) {
    const std::uint64_t w =
        region.writes(idx).fetch_add(1, std::memory_order_relaxed) + 1;
    if (w == config_.prediction_threshold && config_.prediction_enabled &&
        hook_ && track->try_begin_prediction()) {
      hook_(*this, region, idx);
    }
  }
}

void Runtime::escalate(ShadowSpace& region, std::size_t line_index) {
  // Step 2 of the Section 3.2 workflow: once line L becomes interesting,
  // track word-level detail for L *and its adjacent lines*, since only
  // adjacent-line accesses can turn into false sharing under a different
  // placement or a larger line size.
  region.ensure_tracker(line_index);
  if (config_.prediction_enabled) {
    if (line_index > 0) region.ensure_tracker(line_index - 1);
    if (line_index + 1 < region.num_lines()) {
      region.ensure_tracker(line_index + 1);
    }
  }
}

VirtualLineTracker* Runtime::add_virtual_line(ShadowSpace& region,
                                              Address start, std::size_t size,
                                              VirtualLineTracker::Kind kind,
                                              std::size_t origin_line,
                                              Address hot_x, Address hot_y) {
  VirtualLineTracker* vl = nullptr;
  {
    std::lock_guard<Spinlock> g(vl_lock_);
    virtual_lines_.emplace_back(start, size, kind, origin_line, hot_x, hot_y);
    vl = &virtual_lines_.back();
  }
  // Register coverage with every physical line the range overlaps, creating
  // trackers where needed so future accesses are seen at all.
  const std::size_t first = region.line_index(start);
  const std::size_t last = region.line_index(start + size - 1);
  for (std::size_t i = first; i <= last && i < region.num_lines(); ++i) {
    region.ensure_tracker(i)->add_virtual_line(vl);
  }
  return vl;
}

std::size_t Runtime::touched_metadata_bytes(
    std::size_t used_heap_bytes) const {
  const std::size_t lines_touched =
      used_heap_bytes / config_.geometry.line_size;
  std::size_t bytes = lines_touched * (sizeof(std::atomic<std::uint64_t>) +
                                       sizeof(std::atomic<CacheTracker*>));
  for_each_region([&](const ShadowSpace& region) {
    bytes += region.tracker_count() * sizeof(CacheTracker);
  });
  {
    std::lock_guard<Spinlock> g(const_cast<Spinlock&>(vl_lock_));
    bytes += virtual_lines_.size() * sizeof(VirtualLineTracker);
  }
  return bytes;
}

std::size_t Runtime::metadata_bytes() const {
  std::size_t bytes = 0;
  for_each_region(
      [&](const ShadowSpace& region) { bytes += region.metadata_bytes(); });
  {
    std::lock_guard<Spinlock> g(const_cast<Spinlock&>(vl_lock_));
    bytes += virtual_lines_.size() * sizeof(VirtualLineTracker);
  }
  return bytes;
}

}  // namespace pred
