// Small deterministic PRNG used by workload generators and property tests.
// xoshiro-style; fast enough to sit inside instrumented inner loops without
// distorting overhead measurements.
#pragma once

#include <cstdint>

namespace pred {

class Xorshift64 {
 public:
  explicit constexpr Xorshift64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : state_(seed ? seed : 1) {}

  constexpr std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_unit() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace pred
