# Empty compiler generated dependencies file for fig10_sampling.
# This may be replaced when dependencies are built.
