#include "baseline/ptu_like.hpp"

#include <algorithm>
#include <mutex>

namespace pred {

void PtuLikeDetector::on_access(Address addr, AccessType type, ThreadId tid) {
  const std::size_t line = geometry_.line_index(addr);
  std::lock_guard<Spinlock> g(lock_);
  LineInfo& info = lines_[line];
  ++info.accesses;
  if (type == AccessType::kWrite) ++info.writes;
  ++info.per_thread[tid];
}

std::vector<PtuLikeDetector::LineReport> PtuLikeDetector::report(
    std::uint64_t min_accesses) const {
  std::vector<LineReport> out;
  std::lock_guard<Spinlock> g(lock_);
  for (const auto& [line, info] : lines_) {
    if (info.accesses < min_accesses) continue;
    LineReport r;
    r.line = line;
    r.accesses = info.accesses;
    r.writes = info.writes;
    r.threads = static_cast<std::uint32_t>(info.per_thread.size());
    r.flagged = r.threads >= 2 && r.writes > 0;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const LineReport& a, const LineReport& b) {
              return a.accesses > b.accesses;
            });
  return out;
}

}  // namespace pred
