#include "runtime/runtime.hpp"

#include <bit>
#include <mutex>

#include "common/check.hpp"

// Live-monitor emission. Compiled out wholesale with PREDATOR_DISABLE_MONITOR
// (CMake option PREDATOR_MONITOR=OFF): no monitor header, no attached-monitor
// load, no branch — the runtime is byte-identical to the pre-monitor build.
#ifndef PREDATOR_DISABLE_MONITOR
#include "monitor/monitor.hpp"
#define PRED_MON_EMIT(type, addr, arg, tid)                          \
  do {                                                               \
    if (Monitor* mon__ = attached_monitor()) [[unlikely]] {          \
      mon__->emit(MonitorEventType::type, (addr), (arg), (tid));     \
    }                                                                \
  } while (0)
#else
#define PRED_MON_EMIT(type, addr, arg, tid) ((void)0)
#endif

namespace pred {

namespace detail {
/// Bumped by every Runtime destruction; guards thread-local caches against
/// pointers into dead runtimes (see write_stage.hpp).
std::atomic<std::uint64_t> runtime_generation_counter{1};
}  // namespace detail

namespace {

thread_local WriteStage t_write_stage;

/// One-entry per-thread region cache: the common monotone access stream
/// resolves its region without touching any shared state.
struct RegionCache {
  const Runtime* rt = nullptr;
  std::uint64_t gen = 0;
  ShadowSpace* region = nullptr;
};
thread_local RegionCache t_region_cache;

}  // namespace

WriteStage& thread_write_stage() { return t_write_stage; }

void flush_staged_writes() { t_write_stage.flush(); }

void WriteStage::flush() {
  const std::uint64_t gen = runtime_generation();
  for (StagedSlot& s : slots) {
    if (s.region != nullptr && s.count != 0 && s.gen == gen) {
      s.rt->apply_staged(*s.region, s.line, s.count);
    }
    s.rt = nullptr;
    s.region = nullptr;
    s.count = 0;
  }
  staged_since_epoch = 0;
}

Runtime::Runtime(RuntimeConfig config) : config_(config) {
  PRED_CHECK(config_.tracking_threshold >= 1);
  PRED_CHECK(config_.prediction_threshold >= config_.tracking_threshold);
  PRED_CHECK(config_.sample_window >= 1);
  PRED_CHECK(config_.sample_interval >= config_.sample_window);
  PRED_CHECK(config_.geometry.line_size % config_.geometry.word_size == 0);
  for (auto& v : visible_) v.store(nullptr, std::memory_order_relaxed);
}

Runtime::~Runtime() {
  // Invalidate every thread-local pointer into this runtime (staged write
  // slots, hot-line and last-region caches). Threads discover the bump
  // lazily and drop stale entries instead of draining them.
  detail::runtime_generation_counter.fetch_add(1, std::memory_order_acq_rel);
}

ShadowSpace* Runtime::register_region(Address base, std::size_t size) {
  // Claim a slot with fetch_add so concurrent registrations cannot collide,
  // then publish the constructed region with a release store.
  const std::size_t slot = num_claimed_.fetch_add(1, std::memory_order_relaxed);
  PRED_CHECK(slot < kMaxRegions);
  regions_[slot] = std::make_unique<ShadowSpace>(base, size, config_.geometry,
                                                 config_.lock_free_tracker);
  ShadowSpace* region = regions_[slot].get();
  visible_[slot].store(region, std::memory_order_release);

  // Rebuild the shadow page map under the registration lock. Each
  // registrant rebuilds after publishing its own region, so whichever
  // rebuild runs last observes every earlier store and the final table is
  // complete even under concurrent registration.
  {
    std::lock_guard<Spinlock> g(reg_lock_);
    std::vector<RegionMap::RegionExtent> extents;
    const std::size_t n = num_claimed_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n && i < kMaxRegions; ++i) {
      if (ShadowSpace* r = visible_[i].load(std::memory_order_acquire)) {
        extents.push_back(
            {r, r->base(),
             r->base() + r->num_lines() * r->geometry().line_size});
      }
    }
    region_map_.rebuild(extents);
  }
  return region;
}

ShadowSpace* Runtime::find_region_slow(Address addr) const {
  const std::size_t n = num_claimed_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n && i < kMaxRegions; ++i) {
    ShadowSpace* r = visible_[i].load(std::memory_order_acquire);
    if (r != nullptr && r->contains(addr)) return r;
  }
  return nullptr;
}

ShadowSpace* Runtime::find_region(Address addr) const {
  if (!config_.fast_region_lookup) [[unlikely]] {
    return find_region_slow(addr);
  }
  RegionCache& cache = t_region_cache;
  const std::uint64_t gen = runtime_generation();
  if (cache.rt == this && cache.gen == gen && cache.region->contains(addr)) {
    return cache.region;
  }
  ShadowSpace* r = region_map_.lookup(addr);
  if (r != nullptr && !r->contains(addr)) [[unlikely]] {
    // The page straddles two regions and maps to the other one.
    r = find_region_slow(addr);
  }
  if (r != nullptr) cache = RegionCache{this, gen, r};
  return r;
}

ThreadId Runtime::register_thread() {
  return next_thread_.fetch_add(1, std::memory_order_relaxed);
}

void Runtime::handle_access_slow(Address addr, AccessType type, ThreadId tid,
                                 std::size_t size) {
  if (config_.instrument_mode == InstrumentMode::kWritesOnly &&
      type == AccessType::kRead) {
    return;
  }
  ShadowSpace* region = find_region(addr);
  if (!region) return;

  const std::size_t ws = config_.geometry.word_size;
  const std::size_t first_word = addr / ws;
  const std::size_t last_word = (addr + (size ? size : 1) - 1) / ws;
  if (first_word == last_word) [[likely]] {
    handle_access_one_word(*region, addr, type, tid);
    return;
  }
  // Rare: an access spanning words (e.g. an unaligned 8-byte store) is split
  // so each touched word's histogram entry is updated.
  for (std::size_t w = first_word; w <= last_word; ++w) {
    Address piece = (w == first_word) ? addr : w * ws;
    if (region->contains(piece)) {
      handle_access_one_word(*region, piece, type, tid);
    }
  }
}

void Runtime::handle_access_one_word(ShadowSpace& region, Address addr,
                                     AccessType type, ThreadId tid) {
  const std::size_t idx = region.line_index(addr);
  CacheTracker* track = region.tracker(idx);
  if (!track) {
    // Fast path of Figure 1: count writes only, no detailed tracking until
    // the line crosses TrackingThreshold.
    if (type == AccessType::kWrite) {
      if (config_.staged_write_counters) [[likely]] {
        stage_write(region, idx);
      } else {
        // Seed behavior: a shared fetch_add per pre-threshold write.
        const std::uint64_t w =
            region.writes(idx).fetch_add(1, std::memory_order_relaxed) + 1;
        if (w >= config_.tracking_threshold) escalate(region, idx);
      }
    }
    return;
  }

  // Sync-aware suppression applies only while no virtual line covers this
  // line: prediction verification (Section 3.4) is fed by sampled-access
  // fan-out, which suppressed accesses would starve.
  const auto outcome =
      config_.sync_suppression && !track->has_virtual_lines()
          ? track->handle_access(addr, type, tid, config_.sample_window,
                                 config_.sample_interval, thread_epoch(tid))
          : track->handle_access(addr, type, tid, config_.sample_window,
                                 config_.sample_interval);
  if (outcome.sampled) {
    if (track->has_virtual_lines()) {
      track->update_virtual_lines(addr, type, tid);
    }
    // One event per sampled access: an invalidation event implies the
    // sample (the aggregator counts it for both totals).
    if (outcome.invalidated) {
      PRED_MON_EMIT(kInvalidation, region.line_start(idx),
                    is_write(type) ? 1u : 0u, tid);
    } else {
      PRED_MON_EMIT(kSampleHit, region.line_start(idx),
                    is_write(type) ? 1u : 0u, tid);
    }
  }
  if (type == AccessType::kWrite) {
    const std::uint64_t w =
        region.writes(idx).fetch_add(1, std::memory_order_relaxed) + 1;
    if (w >= config_.prediction_threshold && config_.prediction_enabled &&
        hook_ && track->try_begin_prediction()) {
      PRED_MON_EMIT(kPredictionStarted, region.line_start(idx), w, tid);
      hook_(*this, region, idx);
    }
  }
}

void Runtime::stage_write(ShadowSpace& region, std::size_t line_index) {
  WriteStage& st = t_write_stage;
  const std::uint64_t gen = runtime_generation();
  StagedSlot& s = st.slots[WriteStage::slot_index(&region, line_index)];
  if (s.region != &region || s.line != line_index || s.gen != gen)
      [[unlikely]] {
    // Evict the previous occupant (drain it unless its runtime died).
    if (s.region != nullptr && s.count != 0 && s.gen == gen) {
      s.rt->apply_staged(*s.region, s.line, s.count);
    }
    s.rt = this;
    s.region = &region;
    s.gen = gen;
    s.line = static_cast<std::uint32_t>(line_index);
    s.count = 0;
    s.base = region.writes_count(line_index);
  }
  ++s.count;
  if (++st.staged_since_epoch >= WriteStage::kEpochLength) [[unlikely]] {
    st.flush();
    return;
  }
  if (s.base + s.count >= config_.tracking_threshold) {
    // Same access as the unstaged path would escalate on (single-writer
    // streams): publish and run the threshold checks now.
    const std::uint32_t n = s.count;
    s.region = nullptr;
    s.count = 0;
    apply_staged(region, line_index, n);
    return;
  }
  // Point the inline fast path at this region (power-of-two geometry only:
  // the fast path replaces divisions with a shift and a mask).
  const std::size_t ls = config_.geometry.line_size;
  const std::size_t ws = config_.geometry.word_size;
  if ((ls & (ls - 1)) == 0 && (ws & (ws - 1)) == 0) {
    FastPathCache& fc = t_fastpath_cache;
    fc.region = &region;
    fc.gen = gen;
    fc.region_begin = region.base();
    fc.region_end = region.base() + region.num_lines() * ls;
    fc.stage = &st;
    fc.tracking_threshold = config_.tracking_threshold;
    fc.line_shift = static_cast<std::uint32_t>(std::countr_zero(ls));
    fc.word_mask = ws - 1;
    fc.word_size = ws;
    fc.rt = this;
  }
}

void Runtime::drain_slot(StagedSlot& s) {
  ShadowSpace* region = s.region;
  const std::uint32_t line = s.line;
  const std::uint32_t n = s.count;
  s.region = nullptr;
  s.count = 0;
  apply_staged(*region, line, n);
}

void Runtime::purge_staged(ShadowSpace& region, std::size_t line_index) {
  StagedSlot& s =
      t_write_stage.slots[WriteStage::slot_index(&region, line_index)];
  if (s.region != &region || s.line != line_index) return;
  // Publish without threshold checks: the line is being escalated right
  // now, and staged counts are < tracking_threshold above their base, so
  // they cannot cross prediction_threshold either (single-writer); a
  // multi-writer jump is caught by the tracked path's >= check.
  if (s.count != 0 && s.gen == runtime_generation()) {
    region.writes(line_index).fetch_add(s.count, std::memory_order_relaxed);
  }
  s.region = nullptr;
  s.count = 0;
}

void Runtime::apply_staged(ShadowSpace& region, std::size_t line_index,
                           std::uint64_t count) {
  const std::uint64_t prev =
      region.writes(line_index).fetch_add(count, std::memory_order_relaxed);
  const std::uint64_t now = prev + count;
  if (region.tracker(line_index) == nullptr &&
      now >= config_.tracking_threshold) {
    escalate(region, line_index);
  }
  // A drain can jump the counter across PredictionThreshold without any
  // tracked-path write observing the crossing; fire the hook here so the
  // Section 3.2 analysis is never skipped. try_begin_prediction keeps it
  // once-per-line.
  if (config_.prediction_enabled && hook_ &&
      prev < config_.prediction_threshold &&
      now >= config_.prediction_threshold) {
    if (CacheTracker* t = region.tracker(line_index);
        t != nullptr && t->try_begin_prediction()) {
      PRED_MON_EMIT(kPredictionStarted, region.line_start(line_index), now,
                    kInvalidThread);
      hook_(*this, region, line_index);
    }
  }
}

void Runtime::ensure_tracked_line(ShadowSpace& region,
                                  std::size_t line_index) {
  purge_staged(region, line_index);
  // A lost race here (two threads both observe "no tracker") at worst emits
  // a duplicate escalation event; the aggregator folds escalations
  // idempotently per line.
  const bool fresh = region.tracker(line_index) == nullptr;
  // Create the tracker disarmed: accesses racing this escalation are
  // counted but do not consume sampling-window positions (the seed burned
  // window slots on accesses that arrived mid-escalation). arm() below
  // opens the sampling clock once the bookkeeping is complete.
  CacheTracker* track = region.ensure_tracker(line_index, /*armed=*/false);
  if (fresh) {
    PRED_MON_EMIT(kLineEscalated, region.line_start(line_index), 0,
                  kInvalidThread);
  }
  track->arm();
}

void Runtime::escalate(ShadowSpace& region, std::size_t line_index) {
  // Step 2 of the Section 3.2 workflow: once line L becomes interesting,
  // track word-level detail for L *and its adjacent lines*, since only
  // adjacent-line accesses can turn into false sharing under a different
  // placement or a larger line size. Each line's staged counts are purged
  // first so the fast path stops short-circuiting lines that now track.
  ensure_tracked_line(region, line_index);
  if (config_.prediction_enabled) {
    if (line_index > 0) {
      ensure_tracked_line(region, line_index - 1);
    }
    if (line_index + 1 < region.num_lines()) {
      ensure_tracked_line(region, line_index + 1);
    }
  }
}

void Runtime::handle_handoff(Address addr, std::size_t len, ThreadId tid) {
  handle_sync(tid);
  if (len == 0) return;
  ShadowSpace* region = find_region(addr);
  if (region == nullptr) return;
  const std::uint32_t epoch = thread_epoch(tid);
  const std::size_t first = region->line_index(addr);
  const Address last_addr = addr + len - 1;
  const std::size_t last = region->contains(last_addr)
                               ? region->line_index(last_addr)
                               : region->num_lines() - 1;
  // Claiming escalates: the claim stands in for the receiver's first write
  // to each line — which sync-scoped pruning may have dropped from the
  // instrumented stream — so the line must have a history automaton to
  // receive it. Left untracked, a pruned first write would make the next
  // cross-thread access look like the first ever and an invalidation would
  // be lost.
  for (std::size_t i = first; i <= last && i < region->num_lines(); ++i) {
    ensure_tracked_line(*region, i);
    region->tracker(i)->claim_for_handoff(tid, epoch);
  }
}

VirtualLineTracker* Runtime::add_virtual_line(ShadowSpace& region,
                                              Address start, std::size_t size,
                                              VirtualLineTracker::Kind kind,
                                              std::size_t origin_line,
                                              Address hot_x, Address hot_y) {
  VirtualLineTracker* vl = nullptr;
  {
    std::lock_guard<Spinlock> g(vl_lock_);
    virtual_lines_.emplace_back(start, size, kind, origin_line, hot_x, hot_y,
                                config_.lock_free_tracker);
    vl = &virtual_lines_.back();
  }
  PRED_MON_EMIT(kVirtualLineNominated, start, size, kInvalidThread);
  // Register coverage with every physical line the range overlaps, creating
  // trackers where needed so future accesses are seen at all.
  const std::size_t first = region.line_index(start);
  const std::size_t last = region.line_index(start + size - 1);
  for (std::size_t i = first; i <= last && i < region.num_lines(); ++i) {
    ensure_tracked_line(region, i);
    region.tracker(i)->add_virtual_line(vl);
  }
  return vl;
}

std::size_t Runtime::touched_metadata_bytes(
    std::size_t used_heap_bytes) const {
  const std::size_t lines_touched =
      used_heap_bytes / config_.geometry.line_size;
  std::size_t bytes = lines_touched * (sizeof(std::atomic<std::uint64_t>) +
                                       sizeof(std::atomic<CacheTracker*>));
  for_each_region([&](const ShadowSpace& region) {
    region.for_each_tracker([&](std::size_t, const CacheTracker* t) {
      bytes += t->metadata_bytes();
    });
  });
  bytes += region_map_.bytes();
  {
    std::lock_guard<Spinlock> g(vl_lock_);
    bytes += virtual_lines_.size() * sizeof(VirtualLineTracker);
  }
  return bytes;
}

std::size_t Runtime::metadata_bytes() const {
  std::size_t bytes = 0;
  for_each_region(
      [&](const ShadowSpace& region) { bytes += region.metadata_bytes(); });
  bytes += region_map_.bytes();
  {
    std::lock_guard<Spinlock> g(vl_lock_);
    bytes += virtual_lines_.size() * sizeof(VirtualLineTracker);
  }
  return bytes;
}

}  // namespace pred
