# Canonical counted loop hammering one slot — the textual-IR analogue of the
# per-thread half of PREDATOR's classic false-sharing kernel.
#
# `store.8 [r0]` is loop-invariant: `predator-cli analyze` shows the pruning
# pipeline hoisting it out of bb2 into a single trip-count report planted in
# the preheader bb0 (1 loop batched, 1 report inserted).
#
#   r0 = slot address, r1 = iterations
func hammer(2 args, 5 regs):
bb0:
  r2 = const 0
  br bb1
bb1:
  r3 = r2 < r1
  br r3 ? bb2 : bb3
bb2:
  store.8 [r0], r2
  r4 = const 1
  r2 = r2 + r4
  br bb1
bb3:
  ret r2
