file(REMOVE_RECURSE
  "CMakeFiles/ablation_batched_calls.dir/ablation_batched_calls.cpp.o"
  "CMakeFiles/ablation_batched_calls.dir/ablation_batched_calls.cpp.o.d"
  "ablation_batched_calls"
  "ablation_batched_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batched_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
