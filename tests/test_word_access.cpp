// Unit tests for the per-word access histogram (Section 2.3.2): ownership,
// shared-marking, and counter behavior.
#include <gtest/gtest.h>

#include "runtime/word_access.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;

TEST(WordAccess, StartsUntouched) {
  WordAccess w;
  EXPECT_FALSE(w.touched());
  EXPECT_FALSE(w.shared());
  EXPECT_EQ(w.owner, kInvalidThread);
}

TEST(WordAccess, FirstAccessClaimsOwnership) {
  WordAccess w;
  w.record(5, R);
  EXPECT_TRUE(w.touched());
  EXPECT_EQ(w.owner, 5u);
  EXPECT_EQ(w.reads, 1u);
  EXPECT_EQ(w.writes, 0u);
}

TEST(WordAccess, SameThreadKeepsOwnership) {
  WordAccess w;
  for (int i = 0; i < 50; ++i) w.record(2, i % 2 ? R : W);
  EXPECT_EQ(w.owner, 2u);
  EXPECT_FALSE(w.shared());
  EXPECT_EQ(w.reads + w.writes, 50u);
}

TEST(WordAccess, SecondThreadMarksShared) {
  WordAccess w;
  w.record(1, W);
  w.record(2, R);
  EXPECT_TRUE(w.shared());
}

TEST(WordAccess, SharedStaysSharedForever) {
  WordAccess w;
  w.record(1, W);
  w.record(2, W);
  ASSERT_TRUE(w.shared());
  // Further single-thread accesses do not un-share (the paper stops thread
  // tracking once a word is shared).
  for (int i = 0; i < 100; ++i) w.record(1, W);
  EXPECT_TRUE(w.shared());
}

TEST(WordAccess, CountsSplitReadsAndWrites) {
  WordAccess w;
  for (int i = 0; i < 7; ++i) w.record(0, R);
  for (int i = 0; i < 3; ++i) w.record(0, W);
  EXPECT_EQ(w.reads, 7u);
  EXPECT_EQ(w.writes, 3u);
  EXPECT_EQ(w.total(), 10u);
}

TEST(WordAccess, SharedSentinelDistinctFromInvalid) {
  EXPECT_NE(WordAccess::kSharedWord, kInvalidThread);
}

TEST(WordAccess, CountsKeepAccumulatingWhileShared) {
  WordAccess w;
  w.record(1, W);
  w.record(2, W);
  w.record(3, R);
  EXPECT_EQ(w.writes, 2u);
  EXPECT_EQ(w.reads, 1u);
}

}  // namespace
}  // namespace pred
