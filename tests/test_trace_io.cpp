// Tests for trace persistence: round-trip fidelity, corruption rejection,
// and the record-once / analyze-many workflow (saved traces replayed under
// different detector configurations give the same verdicts as live capture).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/trace_io.hpp"
#include "trace/wire_format.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

ThreadTrace make_trace(std::size_t n, Address base) {
  ThreadTrace t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({base + 8 * i, static_cast<std::uint32_t>(i % 100),
                 i % 3 == 0 ? AccessType::kWrite : AccessType::kRead,
                 static_cast<std::uint8_t>(i % 2 ? 8 : 1)});
  }
  return t;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  std::vector<ThreadTrace> traces;
  traces.push_back(make_trace(1000, 0x1000));
  traces.push_back(make_trace(17, 0x2000));
  traces.push_back({});  // empty thread is legal

  std::stringstream buf;
  ASSERT_TRUE(save_traces(buf, traces));

  std::vector<ThreadTrace> loaded;
  ASSERT_TRUE(load_traces(buf, &loaded));
  ASSERT_EQ(loaded.size(), traces.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    ASSERT_EQ(loaded[t].size(), traces[t].size()) << "thread " << t;
    for (std::size_t i = 0; i < traces[t].size(); ++i) {
      EXPECT_EQ(loaded[t][i].addr, traces[t][i].addr);
      EXPECT_EQ(loaded[t][i].think_cycles, traces[t][i].think_cycles);
      EXPECT_EQ(loaded[t][i].type, traces[t][i].type);
      EXPECT_EQ(loaded[t][i].size, traces[t][i].size);
    }
  }
  EXPECT_EQ(total_events(loaded), 1017u);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf;
  buf.write("NOPE", 4);
  std::vector<ThreadTrace> loaded{make_trace(3, 0)};
  EXPECT_FALSE(load_traces(buf, &loaded));
  EXPECT_TRUE(loaded.empty());  // cleared on failure
}

TEST(TraceIo, RejectsTruncatedStream) {
  std::vector<ThreadTrace> traces{make_trace(100, 0x1000)};
  std::stringstream buf;
  ASSERT_TRUE(save_traces(buf, traces));
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  std::vector<ThreadTrace> loaded;
  EXPECT_FALSE(load_traces(cut, &loaded));
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream buf;
  const std::uint32_t magic = kTraceMagic;
  const std::uint32_t bad_version = kTraceVersion + 1;
  buf.write(reinterpret_cast<const char*>(&magic), 4);
  buf.write(reinterpret_cast<const char*>(&bad_version), 4);
  std::vector<ThreadTrace> loaded;
  EXPECT_FALSE(load_traces(buf, &loaded));
}

// The current writer emits the v2 frame stream; saved traces must start at
// a verifiable frame boundary, not the legacy preamble.
TEST(TraceIo, SavesVersion2FrameStream) {
  std::vector<ThreadTrace> traces{make_trace(5, 0x1000)};
  std::stringstream buf;
  ASSERT_TRUE(save_traces(buf, traces));
  const std::string bytes = buf.str();

  wire::Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::parse_frame(bytes, &frame, &consumed), wire::FrameError::kOk);
  EXPECT_EQ(frame.type, wire::FrameType::kTraceHeader);
  ASSERT_EQ(wire::parse_frame(std::string_view(bytes).substr(consumed),
                              &frame, &consumed),
            wire::FrameError::kOk);
  EXPECT_EQ(frame.type, wire::FrameType::kThreadTrace);
}

// A legacy v1 file (raw "PRTR" preamble, no frames) still loads.
TEST(TraceIo, ReadsLegacyV1Files) {
  const std::vector<ThreadTrace> traces{make_trace(9, 0x3000),
                                        make_trace(4, 0x5000)};
  std::stringstream buf;
  const std::uint32_t magic = kTraceMagic;
  const std::uint32_t version = 1;
  const std::uint32_t threads = static_cast<std::uint32_t>(traces.size());
  buf.write(reinterpret_cast<const char*>(&magic), 4);
  buf.write(reinterpret_cast<const char*>(&version), 4);
  buf.write(reinterpret_cast<const char*>(&threads), 4);
  for (const ThreadTrace& t : traces) {
    const std::uint64_t count = t.size();
    buf.write(reinterpret_cast<const char*>(&count), 8);
    const std::string packed = pack_events(t);
    buf.write(packed.data(), static_cast<std::streamsize>(packed.size()));
  }

  std::vector<ThreadTrace> loaded;
  ASSERT_TRUE(load_traces(buf, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  ASSERT_EQ(loaded[0].size(), 9u);
  EXPECT_EQ(loaded[0][3].addr, traces[0][3].addr);
  EXPECT_EQ(loaded[0][3].type, traces[0][3].type);
  EXPECT_EQ(loaded[1][2].think_cycles, traces[1][2].think_cycles);
}

// Frame-level version skew (a future framing revision) is rejected up
// front, not misparsed.
TEST(TraceIo, RejectsFrameVersionSkew) {
  std::vector<ThreadTrace> traces{make_trace(6, 0x1000)};
  std::stringstream buf;
  ASSERT_TRUE(save_traces(buf, traces));
  std::string bytes = buf.str();
  bytes[4] = static_cast<char>(wire::kWireVersion + 1);
  std::stringstream skewed(bytes);
  std::vector<ThreadTrace> loaded;
  EXPECT_FALSE(load_traces(skewed, &loaded));
  EXPECT_TRUE(loaded.empty());
}

// Payload corruption inside a frame flips the CRC check, and the loader
// reports failure instead of returning garbage events.
TEST(TraceIo, RejectsCorruptFramePayload) {
  std::vector<ThreadTrace> traces{make_trace(50, 0x1000)};
  std::stringstream buf;
  ASSERT_TRUE(save_traces(buf, traces));
  std::string bytes = buf.str();
  bytes[bytes.size() - 7] ^= 0x08;  // inside the last thread's events
  std::stringstream corrupt(bytes);
  std::vector<ThreadTrace> loaded;
  EXPECT_FALSE(load_traces(corrupt, &loaded));
  EXPECT_TRUE(loaded.empty());
}

// Unknown payload fields from a newer writer are skipped: a trace stream
// annotated with extra fields still round-trips the events.
TEST(TraceIo, SkipsUnknownFieldsFromNewerWriters) {
  const ThreadTrace trace = make_trace(12, 0x2000);

  std::string header;
  wire::FieldWriter hw(&header);
  hw.u64(1, 1);                       // thread count
  hw.u64(2, trace.size());            // total events
  hw.str(700, "future annotation");   // unknown

  std::string body;
  wire::FieldWriter bw(&body);
  bw.u64(999, 0xffffffffull);         // unknown, leading
  bw.u64(1, 0);                       // thread index
  bw.u64(2, trace.size());            // event count
  bw.bytes(3, pack_events(trace));    // events
  bw.str(998, "more future data");    // unknown, trailing

  std::stringstream buf;
  const std::string hframe =
      wire::encode_frame(wire::FrameType::kTraceHeader, header);
  const std::string bframe =
      wire::encode_frame(wire::FrameType::kThreadTrace, body);
  buf.write(hframe.data(), static_cast<std::streamsize>(hframe.size()));
  buf.write(bframe.data(), static_cast<std::streamsize>(bframe.size()));

  std::vector<ThreadTrace> loaded;
  ASSERT_TRUE(load_traces(buf, &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_EQ(loaded[0].size(), trace.size());
  EXPECT_EQ(loaded[0][5].addr, trace[5].addr);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "/tmp/predator_trace_test.bin";
  std::vector<ThreadTrace> traces{make_trace(64, 0x4000)};
  ASSERT_TRUE(save_traces_file(path, traces));
  std::vector<ThreadTrace> loaded;
  ASSERT_TRUE(load_traces_file(path, &loaded));
  EXPECT_EQ(total_events(loaded), 64u);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFailsCleanly) {
  std::vector<ThreadTrace> loaded;
  EXPECT_FALSE(load_traces_file("/nonexistent/dir/trace.bin", &loaded));
}

// Record once, analyze twice: the saved trace replayed into a fresh session
// reproduces the live capture's verdict, and the *same* trace analyzed with
// prediction disabled reproduces PREDATOR-NP — without re-running the
// program.
TEST(TraceIo, RecordOnceAnalyzeMany) {
  SessionOptions opts;
  opts.heap_size = 32 * 1024 * 1024;

  const wl::Workload* w = wl::find_workload("linear_regression");
  ASSERT_NE(w, nullptr);
  wl::Params p;
  p.threads = 8;
  p.offset = 0;

  // Record. Note: the recording session must stay alive while the traces
  // are analyzed, because traces reference its heap addresses.
  Session recorder(opts);
  const auto traces = w->capture(recorder, p);
  std::stringstream buf;
  ASSERT_TRUE(save_traces(buf, traces));
  std::vector<ThreadTrace> loaded;
  ASSERT_TRUE(load_traces(buf, &loaded));

  // Analysis 1: full PREDATOR over the loaded trace.
  wl::replay_into_session(recorder, loaded);
  bool only_predicted = false;
  EXPECT_TRUE(wl::report_mentions_site(
      recorder.report(), recorder.runtime().callsites(),
      w->traits().sites[0].where, &only_predicted));
  EXPECT_TRUE(only_predicted);
}

}  // namespace
}  // namespace pred
