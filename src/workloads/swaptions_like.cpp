// PARSEC swaptions (modeled): no false sharing; notable in Figure 9 for its
// *tiny* memory footprint (sub-megabyte), which makes PREDATOR's fixed
// shadow overhead look huge in relative terms — the paper calls this out
// explicitly. Heavy RMW on small private simulation buffers.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class SwaptionsLike final : public WorkloadImpl<SwaptionsLike> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "swaptions", .suite = "parsec", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t trials = 2500 * p.scale;
    constexpr std::uint64_t kPath = 16;  // two lines of state per thread

    std::vector<std::int64_t*> path(n);
    for (std::uint32_t t = 0; t < n; ++t) {
      path[t] = static_cast<std::int64_t*>(
          h.alloc(kPath * 8 + 64, {"HJM_Securities.cpp:path"}));
      PRED_CHECK(path[t] != nullptr);
      for (std::uint64_t i = 0; i < kPath; ++i) path[t][i] = 100;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      Xorshift64 local(p.seed + 13 * t);
      for (std::uint64_t trial = 0; trial < trials; ++trial) {
        for (std::uint64_t i = 0; i < kPath; ++i) {
          sink.read(&path[t][i], 8);
          const std::int64_t shock =
              static_cast<std::int64_t>(local.next_below(7)) - 3;
          path[t][i] = path[t][i] + shock;
          sink.write(&path[t][i], 8);
        }
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (std::uint64_t i = 0; i < kPath; ++i) {
        r.checksum += static_cast<std::uint64_t>(path[t][i]);
      }
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_swaptions_like() {
  return std::make_unique<SwaptionsLike>();
}

}  // namespace pred::wl
