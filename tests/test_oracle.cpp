// Differential testing against a reference oracle.
//
// ReferenceDetector is a deliberately slow, obviously-correct
// reimplementation of the Section 2.3.1 invalidation rules (no sampling, no
// thresholds, no atomics — a direct transcription of the paper's bullet
// list per line). Random access streams are fed to both the oracle and the
// production Runtime (configured for full tracking); their per-line
// invalidation counts and word histograms must match exactly.
#include <gtest/gtest.h>

#include <map>

#include "common/prng.hpp"
#include "runtime/report.hpp"
#include "runtime/runtime.hpp"

namespace pred {
namespace {

/// Direct transcription of the paper's rules, one state machine per line.
class ReferenceDetector {
 public:
  void access(Address addr, AccessType type, ThreadId tid) {
    LineState& st = lines_[addr / 64];
    // Word histogram.
    WordState& w = st.words[(addr % 64) / 8];
    if (type == AccessType::kWrite) {
      ++w.writes;
    } else {
      ++w.reads;
    }
    if (w.owner == kInvalidThread) {
      w.owner = tid;
    } else if (w.owner != tid) {
      w.owner = WordAccess::kSharedWord;
    }
    // Two-entry history, straight from Section 2.3.1.
    if (type == AccessType::kRead) {
      if (st.entries == 0) {
        st.tid[st.entries++] = tid;
      } else if (st.entries == 1 && st.tid[0] != tid) {
        st.tid[st.entries++] = tid;
      }
      return;
    }
    const bool invalidation =
        st.entries == 2 || (st.entries == 1 && st.tid[0] != tid);
    if (invalidation) ++st.invalidations;
    st.tid[0] = tid;
    st.entries = 1;
  }

  struct WordState {
    std::uint64_t reads = 0, writes = 0;
    ThreadId owner = kInvalidThread;
  };
  struct LineState {
    std::uint64_t invalidations = 0;
    int entries = 0;
    ThreadId tid[2] = {kInvalidThread, kInvalidThread};
    WordState words[8];
  };

  const std::map<std::size_t, LineState>& lines() const { return lines_; }

 private:
  std::map<std::size_t, LineState> lines_;
};

RuntimeConfig full_tracking() {
  RuntimeConfig cfg;
  cfg.tracking_threshold = 1;  // escalate on the first write
  cfg.prediction_enabled = false;
  cfg.sample_window = 1;
  cfg.sample_interval = 1;  // record everything
  return cfg;
}

alignas(64) char g_buf[16 * 1024];

struct Access {
  Address addr;
  AccessType type;
  ThreadId tid;
};

std::vector<Access> random_stream(std::uint64_t seed, int n, int threads,
                                  std::size_t lines) {
  Xorshift64 rng(seed);
  std::vector<Access> out;
  out.reserve(n);
  const Address base = reinterpret_cast<Address>(g_buf);
  for (int i = 0; i < n; ++i) {
    Access a;
    a.addr = base + rng.next_below(lines) * 64 + rng.next_below(8) * 8;
    a.type = rng.next_below(3) == 0 ? AccessType::kWrite : AccessType::kRead;
    a.tid = static_cast<ThreadId>(rng.next_below(threads));
    out.push_back(a);
  }
  return out;
}

class OracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleSweep, RuntimeMatchesReferenceExactly) {
  const auto stream = random_stream(GetParam(), 30000, 6, 12);

  ReferenceDetector oracle;
  Runtime rt(full_tracking());
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buf),
                                    sizeof(g_buf));
  // Caveat: with tracking_threshold = 1 the runtime's first write per line
  // is counted in the fast path before the tracker exists, so the oracle
  // must see everything and the runtime everything except that first write
  // per line. To compare exactly, pre-escalate all lines.
  for (std::size_t i = 0; i < region->num_lines(); ++i) {
    region->ensure_tracker(i);
  }

  for (const Access& a : stream) {
    oracle.access(a.addr, a.type, a.tid);
    rt.handle_access(a.addr, a.type, a.tid);
  }

  for (const auto& [line, ref] : oracle.lines()) {
    const std::size_t idx =
        region->line_index(static_cast<Address>(line * 64));
    CacheTracker* t = region->tracker(idx);
    ASSERT_NE(t, nullptr) << "line " << line;
    EXPECT_EQ(t->invalidations(), ref.invalidations) << "line " << line;
    const auto words = t->words_snapshot();
    for (int w = 0; w < 8; ++w) {
      EXPECT_EQ(words[w].reads, ref.words[w].reads)
          << "line " << line << " word " << w;
      EXPECT_EQ(words[w].writes, ref.words[w].writes)
          << "line " << line << " word " << w;
      EXPECT_EQ(words[w].owner, ref.words[w].owner)
          << "line " << line << " word " << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pred
