// Hot-path ablation: measures pre-threshold access throughput under the
// four combinations of the two fast-path features:
//
//   seed        fast_region_lookup=0  staged_write_counters=0  (baseline)
//   map-only    fast_region_lookup=1  staged_write_counters=0
//   staged-only fast_region_lookup=0  staged_write_counters=1
//   full        fast_region_lookup=1  staged_write_counters=1  (default)
//
// Workload: 4 threads, each writing round-robin over 8 private cache lines
// (disjoint between threads), with thresholds set high enough that no line
// ever escalates — so the measurement isolates exactly the two redesigned
// layers: region resolution and pre-threshold write counting.
//
// Usage: microbench_fastpath [writes_per_thread] [--json FILE]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/predator.hpp"
#include "bench_util.hpp"

namespace {

constexpr std::uint32_t kThreads = 4;
constexpr std::size_t kLinesPerThread = 8;

struct Mode {
  const char* name;
  const char* key;  ///< JSON field stem for --json output
  bool fast_lookup;
  bool staged;
};

double run_mode(const Mode& mode, std::uint64_t writes_per_thread) {
  pred::SessionOptions o;
  o.heap_size = 16 * 1024 * 1024;
  // Never escalate: keep every access on the pre-threshold path.
  o.runtime.tracking_threshold = ~std::uint64_t{0} >> 1;
  o.runtime.prediction_threshold = ~std::uint64_t{0} >> 1;
  o.runtime.fast_region_lookup = mode.fast_lookup;
  o.runtime.staged_write_counters = mode.staged;
  pred::Session session(o);

  const pred::CallsiteId cs = session.intern_frames({"microbench_fastpath"});
  std::vector<long*> blocks(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    blocks[t] = static_cast<long*>(
        session.alloc(kLinesPerThread * 64, cs));
    if (blocks[t] == nullptr) {
      std::fprintf(stderr, "allocation failed\n");
      std::exit(1);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      pred::ScopedThread guard(session, t);
      long* block = blocks[t];
      for (std::uint64_t i = 0; i < writes_per_thread; ++i) {
        // Round-robin over the thread's 8 disjoint lines (8 longs per line).
        session.record(&block[(i % kLinesPerThread) * 8],
                       pred::AccessType::kWrite, t, 8);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto end = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration<double>(end - start).count();
  return static_cast<double>(kThreads) *
         static_cast<double>(writes_per_thread) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t writes = 4'000'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      writes = std::strtoull(argv[i], nullptr, 10);
      if (writes == 0) {
        std::fprintf(stderr,
                     "usage: %s [writes_per_thread > 0] [--json FILE]\n",
                     argv[0]);
        return 1;
      }
    }
  }

  const Mode modes[] = {
      {"seed (linear scan + shared fetch_add)", "seed", false, false},
      {"map-only (page map, shared fetch_add)", "map_only", true, false},
      {"staged-only (linear scan, TLS staging)", "staged_only", false, true},
      {"full (page map + TLS staging)", "full", true, true},
  };

  std::printf("hot-path ablation: %u threads x %" PRIu64
              " disjoint-line writes\n\n",
              kThreads, writes);
  std::printf("%-42s %15s %9s\n", "mode", "accesses/sec", "speedup");

  pred::bench::JsonWriter json;
  double seed_rate = 0.0;
  for (const Mode& m : modes) {
    // Warm-up pass, then the measured pass.
    run_mode(m, writes / 8);
    const double rate = run_mode(m, writes);
    if (seed_rate == 0.0) seed_rate = rate;
    std::printf("%-42s %15.0f %8.2fx\n", m.name, rate, rate / seed_rate);
    json.add(std::string(m.key) + "_aps", rate);
    json.add(std::string(m.key) + "_speedup", rate / seed_rate);
  }
  if (!json_path.empty()) {
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "json: %s\n", json_path.c_str());
  }
  return 0;
}
