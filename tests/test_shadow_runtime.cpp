// Tests for the shadow space (CacheWrites / CacheTracking arrays) and the
// runtime hot path of Figure 1: threshold-gated escalation, adjacent-line
// escalation for prediction, the prediction hook firing, multi-region
// dispatch, and word-splitting of unaligned accesses.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/runtime.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;

RuntimeConfig small_config() {
  RuntimeConfig cfg;
  cfg.tracking_threshold = 4;
  cfg.prediction_threshold = 16;
  cfg.report_invalidation_threshold = 10;
  return cfg;
}

alignas(64) static char g_buffer[4096];

TEST(ShadowSpace, GeometryAndContainment) {
  ShadowSpace s(1000, 200, kDefaultGeometry);
  // Base rounds down to 960; the span covers through byte 1199, so lines
  // 960..1216 exist.
  EXPECT_EQ(s.base(), 960u);
  EXPECT_TRUE(s.contains(960));
  EXPECT_TRUE(s.contains(1199));
  EXPECT_FALSE(s.contains(959));
  EXPECT_EQ(s.line_index(960), 0u);
  EXPECT_EQ(s.line_index(1024), 1u);
  EXPECT_EQ(s.line_start(1), 1024u);
}

TEST(ShadowSpace, EnsureTrackerIsIdempotent) {
  ShadowSpace s(0x10000, 1024, kDefaultGeometry);
  CacheTracker* a = s.ensure_tracker(3);
  CacheTracker* b = s.ensure_tracker(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s.tracker(3), a);
  EXPECT_EQ(s.tracker(2), nullptr);
}

TEST(ShadowSpace, MetadataBytesGrowWithTrackers) {
  ShadowSpace s(0x10000, 4096, kDefaultGeometry);
  const std::size_t before = s.metadata_bytes();
  s.ensure_tracker(0);
  s.ensure_tracker(1);
  EXPECT_EQ(s.metadata_bytes(), before + 2 * sizeof(CacheTracker));
}

TEST(Runtime, IgnoresUntrackedAddresses) {
  Runtime rt(small_config());
  // No region registered: must be a no-op, not a crash.
  rt.handle_access(reinterpret_cast<Address>(g_buffer), W, 0);
}

TEST(Runtime, NoTrackingBelowThreshold) {
  Runtime rt(small_config());
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  const Address a = reinterpret_cast<Address>(g_buffer);
  for (int i = 0; i < 3; ++i) rt.handle_access(a, W, 0);
  EXPECT_EQ(region->tracker(region->line_index(a)), nullptr);
  // Pre-threshold writes sit in the thread-local stage until drained.
  flush_staged_writes();
  EXPECT_EQ(region->writes_count(region->line_index(a)), 3u);
}

TEST(Runtime, EscalatesAtTrackingThreshold) {
  Runtime rt(small_config());
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  const Address a = reinterpret_cast<Address>(g_buffer) + 640;
  for (int i = 0; i < 4; ++i) rt.handle_access(a, W, 0);
  const std::size_t idx = region->line_index(a);
  ASSERT_NE(region->tracker(idx), nullptr);
  // Prediction enabled: adjacent lines get trackers too (Section 3.2
  // step 2).
  EXPECT_NE(region->tracker(idx - 1), nullptr);
  EXPECT_NE(region->tracker(idx + 1), nullptr);
}

TEST(Runtime, NoAdjacentEscalationWithoutPrediction) {
  RuntimeConfig cfg = small_config();
  cfg.prediction_enabled = false;
  Runtime rt(cfg);
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  const Address a = reinterpret_cast<Address>(g_buffer) + 640;
  for (int i = 0; i < 4; ++i) rt.handle_access(a, W, 0);
  const std::size_t idx = region->line_index(a);
  EXPECT_NE(region->tracker(idx), nullptr);
  EXPECT_EQ(region->tracker(idx - 1), nullptr);
  EXPECT_EQ(region->tracker(idx + 1), nullptr);
}

TEST(Runtime, ReadsAloneNeverEscalate) {
  Runtime rt(small_config());
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  const Address a = reinterpret_cast<Address>(g_buffer);
  for (int i = 0; i < 1000; ++i) rt.handle_access(a, R, i % 4);
  EXPECT_EQ(region->tracker(region->line_index(a)), nullptr);
}

TEST(Runtime, PredictionHookFiresOnceAtThreshold) {
  Runtime rt(small_config());
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  std::atomic<int> fired{0};
  std::size_t hook_line = ~0ull;
  rt.set_prediction_hook(
      [&](Runtime&, ShadowSpace&, std::size_t line) {
        ++fired;
        hook_line = line;
      });
  const Address a = reinterpret_cast<Address>(g_buffer) + 1280;
  for (int i = 0; i < 100; ++i) rt.handle_access(a, W, 0);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(hook_line, region->line_index(a));
}

TEST(Runtime, HookDoesNotFireWhenPredictionDisabled) {
  RuntimeConfig cfg = small_config();
  cfg.prediction_enabled = false;
  Runtime rt(cfg);
  rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  int fired = 0;
  rt.set_prediction_hook(
      [&](Runtime&, ShadowSpace&, std::size_t) { ++fired; });
  const Address a = reinterpret_cast<Address>(g_buffer);
  for (int i = 0; i < 100; ++i) rt.handle_access(a, W, 0);
  EXPECT_EQ(fired, 0);
}

TEST(Runtime, WritesOnlyModeDropsReads) {
  RuntimeConfig cfg = small_config();
  cfg.instrument_mode = InstrumentMode::kWritesOnly;
  Runtime rt(cfg);
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  const Address a = reinterpret_cast<Address>(g_buffer);
  for (int i = 0; i < 8; ++i) rt.handle_access(a, W, 0);
  CacheTracker* t = region->tracker(region->line_index(a));
  ASSERT_NE(t, nullptr);
  for (int i = 0; i < 50; ++i) rt.handle_access(a, R, 1);
  EXPECT_EQ(t->sampled_reads(), 0u);
}

TEST(Runtime, UnalignedAccessSplitsAcrossWords) {
  Runtime rt(small_config());
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  const Address base = reinterpret_cast<Address>(g_buffer);
  // Escalate line 0 first.
  for (int i = 0; i < 4; ++i) rt.handle_access(base, W, 0);
  // An 8-byte access at offset 4 touches words 0 and 1.
  rt.handle_access(base + 4, W, 0, 8);
  CacheTracker* t = region->tracker(0);
  ASSERT_NE(t, nullptr);
  const auto words = t->words_snapshot();
  EXPECT_GE(words[0].writes, 1u);
  EXPECT_GE(words[1].writes, 1u);
}

TEST(Runtime, MultipleRegionsDispatchCorrectly) {
  Runtime rt(small_config());
  alignas(64) static char other[1024];
  auto* r1 = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  auto* r2 = rt.register_region(reinterpret_cast<Address>(other), 1024);
  EXPECT_EQ(rt.find_region(reinterpret_cast<Address>(g_buffer) + 100), r1);
  EXPECT_EQ(rt.find_region(reinterpret_cast<Address>(other) + 100), r2);
  EXPECT_EQ(rt.find_region(1), nullptr);
}

TEST(Runtime, ThreadIdsAreDense) {
  Runtime rt;
  EXPECT_EQ(rt.register_thread(), 0u);
  EXPECT_EQ(rt.register_thread(), 1u);
  EXPECT_EQ(rt.register_thread(), 2u);
  EXPECT_EQ(rt.thread_count(), 3u);
}

TEST(Runtime, ConcurrentEscalationIsSafe) {
  Runtime rt(small_config());
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  const Address a = reinterpret_cast<Address>(g_buffer) + 2048;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rt, a, t] {
      for (int i = 0; i < 5000; ++i) {
        rt.handle_access(a + 8 * static_cast<Address>(t), W,
                         static_cast<ThreadId>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  CacheTracker* tr = region->tracker(region->line_index(a));
  ASSERT_NE(tr, nullptr);
  // All post-escalation accesses were seen (20000 total minus the at most
  // ~threshold*threads that raced pre-escalation).
  EXPECT_GT(tr->total_accesses(), 19000u);
  EXPECT_GT(tr->invalidations(), 0u);
}

TEST(Runtime, VirtualLineRegistrationCoversAllOverlappedLines) {
  Runtime rt(small_config());
  auto* region = rt.register_region(reinterpret_cast<Address>(g_buffer), 4096);
  const Address base = reinterpret_cast<Address>(g_buffer);
  // A shifted virtual line straddling lines 1 and 2.
  auto* vl = rt.add_virtual_line(*region, base + 96, 64,
                                 VirtualLineTracker::Kind::kShifted, 1,
                                 base + 96, base + 136);
  ASSERT_NE(vl, nullptr);
  ASSERT_NE(region->tracker(1), nullptr);
  ASSERT_NE(region->tracker(2), nullptr);
  EXPECT_TRUE(region->tracker(1)->has_virtual_lines());
  EXPECT_TRUE(region->tracker(2)->has_virtual_lines());
  EXPECT_EQ(rt.virtual_lines().size(), 1u);
}

}  // namespace
}  // namespace pred
