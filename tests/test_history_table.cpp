// Unit tests for the two-entry cache history table (Section 2.3.1): every
// rule from the paper's bullet list, plus property sweeps over access
// sequences.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "runtime/history_table.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;

TEST(HistoryTable, StartsEmpty) {
  HistoryTable t;
  EXPECT_EQ(t.size(), 0);
}

TEST(HistoryTable, FirstWriteIsNotInvalidation) {
  HistoryTable t;
  EXPECT_EQ(t.access(0, W), HistoryOutcome::kNoEvent);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.thread_at(0), 0u);
  EXPECT_EQ(t.type_at(0), W);
}

TEST(HistoryTable, RepeatedWritesBySameThreadNeverInvalidate) {
  HistoryTable t;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.access(3, W), HistoryOutcome::kNoEvent);
  }
  EXPECT_EQ(t.size(), 1);
}

TEST(HistoryTable, WriteAfterOtherThreadWriteInvalidates) {
  HistoryTable t;
  t.access(0, W);
  EXPECT_EQ(t.access(1, W), HistoryOutcome::kInvalidation);
  // Invalidation resets the table to the invalidating write.
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.thread_at(0), 1u);
  EXPECT_EQ(t.type_at(0), W);
}

TEST(HistoryTable, WriteAfterOtherThreadReadInvalidates) {
  HistoryTable t;
  t.access(2, R);
  EXPECT_EQ(t.access(1, W), HistoryOutcome::kInvalidation);
}

TEST(HistoryTable, PingPongWritesInvalidateEveryTime) {
  HistoryTable t;
  t.access(0, W);
  int invalidations = 0;
  for (int i = 1; i <= 1000; ++i) {
    if (t.access(i % 2, W) == HistoryOutcome::kInvalidation) ++invalidations;
  }
  EXPECT_EQ(invalidations, 1000);
}

TEST(HistoryTable, ReadNeverInvalidates) {
  HistoryTable t;
  t.access(0, W);
  for (ThreadId tid = 0; tid < 10; ++tid) {
    EXPECT_EQ(t.access(tid, R), HistoryOutcome::kNoEvent);
  }
}

TEST(HistoryTable, ReadFromSecondThreadFillsTable) {
  HistoryTable t;
  t.access(0, W);
  t.access(1, R);
  EXPECT_EQ(t.size(), 2);
}

TEST(HistoryTable, ReadFromSameThreadIsNotRecordedTwice) {
  HistoryTable t;
  t.access(0, W);
  t.access(0, R);
  EXPECT_EQ(t.size(), 1);  // same thread: no new entry
}

TEST(HistoryTable, ReadsToFullTableAreIgnored) {
  HistoryTable t;
  t.access(0, W);
  t.access(1, R);
  ASSERT_EQ(t.size(), 2);
  t.access(2, R);  // full: ignored
  EXPECT_EQ(t.size(), 2);
  EXPECT_EQ(t.thread_at(0), 0u);
  EXPECT_EQ(t.thread_at(1), 1u);
}

TEST(HistoryTable, WriteToFullTableAlwaysInvalidates) {
  HistoryTable t;
  t.access(0, W);
  t.access(1, R);
  // Even the thread already in the table invalidates the other's copy.
  EXPECT_EQ(t.access(0, W), HistoryOutcome::kInvalidation);
}

TEST(HistoryTable, WriteReadWriteRoundTrip) {
  HistoryTable t;
  EXPECT_EQ(t.access(0, W), HistoryOutcome::kNoEvent);
  EXPECT_EQ(t.access(1, R), HistoryOutcome::kNoEvent);
  EXPECT_EQ(t.access(1, W), HistoryOutcome::kInvalidation);
  EXPECT_EQ(t.access(0, R), HistoryOutcome::kNoEvent);
  EXPECT_EQ(t.access(0, W), HistoryOutcome::kInvalidation);
}

TEST(HistoryTable, ResetClears) {
  HistoryTable t;
  t.access(0, W);
  t.access(1, R);
  t.reset();
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.access(2, W), HistoryOutcome::kNoEvent);
}

// --- properties -----------------------------------------------------------

// Single-thread streams can never produce invalidations.
TEST(HistoryTableProperty, SingleThreadStreamNeverInvalidates) {
  Xorshift64 rng(42);
  HistoryTable t;
  for (int i = 0; i < 10000; ++i) {
    const AccessType type = rng.next_below(2) ? W : R;
    EXPECT_EQ(t.access(7, type), HistoryOutcome::kNoEvent);
  }
}

// Read-only streams can never produce invalidations, no matter how many
// threads participate.
TEST(HistoryTableProperty, ReadOnlyStreamNeverInvalidates) {
  Xorshift64 rng(43);
  HistoryTable t;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(t.access(static_cast<ThreadId>(rng.next_below(16)), R),
              HistoryOutcome::kNoEvent);
  }
}

// The table never grows beyond two entries and never dies: after any stream,
// another write is always representable.
TEST(HistoryTableProperty, TableSizeBounded) {
  Xorshift64 rng(44);
  HistoryTable t;
  for (int i = 0; i < 100000; ++i) {
    const AccessType type = rng.next_below(4) == 0 ? W : R;
    t.access(static_cast<ThreadId>(rng.next_below(8)), type);
    ASSERT_GE(t.size(), 0);
    ASSERT_LE(t.size(), 2);
  }
}

// Invalidation count is bounded by the number of writes in the stream.
TEST(HistoryTableProperty, InvalidationsBoundedByWrites) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Xorshift64 rng(seed);
    HistoryTable t;
    int writes = 0;
    int invalidations = 0;
    for (int i = 0; i < 5000; ++i) {
      const AccessType type = rng.next_below(2) ? W : R;
      writes += type == W;
      invalidations +=
          t.access(static_cast<ThreadId>(rng.next_below(6)), type) ==
          HistoryOutcome::kInvalidation;
    }
    EXPECT_LE(invalidations, writes) << "seed " << seed;
  }
}

// --- packed (lock-free) table ---------------------------------------------

// The CAS-packed table is the same automaton as BoundedHistoryTable<2>:
// identical outcome and identical table contents after every access of a
// random multi-thread stream.
TEST(PackedHistoryTable, MatchesBoundedTableStepByStep) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Xorshift64 rng(seed * 131);
    HistoryTable ref;
    PackedHistoryTable packed;
    for (int i = 0; i < 5000; ++i) {
      const AccessType type = rng.next_below(3) == 0 ? W : R;
      const ThreadId tid = static_cast<ThreadId>(rng.next_below(6));
      ASSERT_EQ(packed.access(tid, type), ref.access(tid, type))
          << "seed " << seed << " step " << i;
      ASSERT_EQ(packed.size(), ref.size()) << "seed " << seed << " step " << i;
      for (int e = 0; e < ref.size(); ++e) {
        ASSERT_EQ(packed.thread_at(e), ref.thread_at(e));
        ASSERT_EQ(packed.type_at(e), ref.type_at(e));
      }
    }
  }
}

// A repeated write by the sole resident writer leaves the word untouched —
// the encoding makes the no-op visible (same raw state), which is what lets
// the hot path skip the CAS entirely for a single-owner line.
TEST(PackedHistoryTable, SoleWriterStateIsStable) {
  PackedHistoryTable t;
  t.access(5, W);
  const std::uint64_t raw = t.raw();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.access(5, W), HistoryOutcome::kNoEvent);
  }
  EXPECT_EQ(t.raw(), raw);
}

TEST(PackedHistoryTable, ResetClears) {
  PackedHistoryTable t;
  t.access(0, W);
  t.access(1, R);
  t.reset();
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.raw(), 0u);
  EXPECT_EQ(t.access(2, W), HistoryOutcome::kNoEvent);
}

// Concurrent ping-pong writers: every access is either the table's resident
// writer or an invalidator, so across all threads the invalidation total
// must equal total writes minus the runs of same-thread consecutive wins —
// bounded by total writes, and at least one per thread switch is impossible
// to assert deterministically, so we pin the conservation side: outcomes
// are exactly one per access and the final table holds one writer.
TEST(PackedHistoryTable, ConcurrentWritersConserveOutcomes) {
  PackedHistoryTable t;
  constexpr int kThreads = 4;
  constexpr int kWrites = 20000;
  std::atomic<std::uint64_t> invalidations{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t, &invalidations, w] {
      std::uint64_t mine = 0;
      for (int i = 0; i < kWrites; ++i) {
        if (t.access(static_cast<ThreadId>(w), W) ==
            HistoryOutcome::kInvalidation) {
          ++mine;
        }
      }
      invalidations.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  // Every invalidation is a CAS win that displaced another thread; the
  // total cannot exceed total writes, and the final state is one writer.
  EXPECT_LE(invalidations.load(), std::uint64_t{kThreads} * kWrites);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.type_at(0), W);
  EXPECT_LT(t.thread_at(0), static_cast<ThreadId>(kThreads));
}

// A full table always holds two distinct threads (the precondition for the
// "write to full table invalidates" rule).
TEST(HistoryTableProperty, FullTableHoldsDistinctThreads) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Xorshift64 rng(seed * 977);
    HistoryTable t;
    for (int i = 0; i < 5000; ++i) {
      const AccessType type = rng.next_below(3) == 0 ? W : R;
      t.access(static_cast<ThreadId>(rng.next_below(5)), type);
      if (t.size() == 2) {
        ASSERT_NE(t.thread_at(0), t.thread_at(1)) << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace pred
