// Seeded random module generator for property tests. Produces verified,
// executable, workload-shaped modules: counted loops in the canonical
// header/body/latch form the batching pass recognizes, early-exit loops
// whose latch is a conditional branch (the shape batching must reject),
// diamonds whose arm
// is picked by the runtime argument, straight-line access runs with
// deliberate duplicates, aliased address chains (moves and split constant
// offsets) that only value numbering can unify, and occasional memory
// intrinsics.
//
// Contract: every generated function takes (buf, n) and, run with any
// n >= 0, touches only [buf, buf + 8 * (n + max_offset_words)). Tests size
// the buffer from the same options they generate with.
#pragma once

#include <cstdint>

#include "instrument/ir.hpp"

namespace pred::ir {

struct GeneratorOptions {
  std::uint32_t segments = 4;           ///< loop/diamond regions per function
  std::uint32_t accesses_per_block = 3;
  std::uint32_t max_offset_words = 24;  ///< invariant offsets live below this
  bool allow_intrinsics = true;
};

/// Deterministic in `seed`; the result always passes verify().
Module generate_module(std::uint64_t seed, const GeneratorOptions& opts = {});

}  // namespace pred::ir
