// Ablation: selective compiler instrumentation (Section 2.4.2).
//
// The paper instruments each (address, access type) once per basic block,
// arguing this cuts runtime calls without hurting detection. This bench
// quantifies both halves of the claim on an IR kernel with redundant
// intra-block accesses: runtime-call counts with and without dedup, and the
// detection verdict in each configuration.
#include <cstdio>

#include "bench_util.hpp"
#include "instrument/interp.hpp"
#include "instrument/pass.hpp"

using namespace pred;
using namespace pred::ir;
using namespace pred::bench;

namespace {

// A loop body that touches the same slot several times per iteration (as
// unoptimized accumulation code does): 3 loads + 2 stores of one address
// per block.
Function build_redundant_kernel() {
  FunctionBuilder b("kernel", 2);  // r0 = slot, r1 = iterations
  const Reg slot = b.arg(0);
  const Reg n = b.arg(1);
  const Reg i = b.fresh_reg();
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t done = b.new_block();
  b.br(header);
  b.set_block(header);
  b.cond_br(b.cmp_lt(i, n), body, done);
  b.set_block(body);
  const Reg v1 = b.load(slot);
  b.store(slot, b.add(v1, b.const_val(1)));
  const Reg v2 = b.load(slot);
  b.store(slot, b.add(v2, i));
  const Reg v3 = b.load(slot);
  (void)v3;
  b.move(i, b.add(i, b.const_val(1)));
  b.br(header);
  b.set_block(done);
  b.ret(i);
  return b.take();
}

struct Outcome {
  std::uint64_t runtime_calls = 0;
  bool detected = false;
  double seconds = 0.0;
};

Outcome run(bool selective) {
  Module m;
  m.functions.push_back(build_redundant_kernel());
  PassOptions opt;
  opt.selective = selective;
  run_instrumentation_pass(m, opt);

  SessionOptions so = session_options();
  Session session(so);
  auto* slots = static_cast<long*>(session.alloc(64, session.intern_frames({"ablation.c:slots"})));
  slots[0] = slots[1] = 0;

  Interpreter interp(&session);
  const Function* fn = m.find("kernel");
  Outcome out;
  Stopwatch sw;
  for (int round = 0; round < 2000; ++round) {
    for (ThreadId tid = 0; tid < 2; ++tid) {
      const std::int64_t args[] = {
          static_cast<std::int64_t>(
              reinterpret_cast<std::intptr_t>(&slots[tid])),
          20};
      out.runtime_calls += interp.run(*fn, args, tid).runtime_calls;
    }
  }
  out.seconds = sw.elapsed_seconds();
  out.detected = wl::false_sharing_findings(session.report()) > 0;
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation: selective per-block instrumentation "
              "(Section 2.4.2)\n\n");
  const Outcome with = run(/*selective=*/true);
  const Outcome without = run(/*selective=*/false);
  std::printf("%-28s %16s %12s %10s\n", "configuration", "runtime calls",
              "time (s)", "detected");
  print_rule('-', 70);
  std::printf("%-28s %16llu %12.4f %10s\n", "selective (paper default)",
              static_cast<unsigned long long>(with.runtime_calls),
              with.seconds, with.detected ? "yes" : "NO");
  std::printf("%-28s %16llu %12.4f %10s\n", "instrument everything",
              static_cast<unsigned long long>(without.runtime_calls),
              without.seconds, without.detected ? "yes" : "NO");
  print_rule('-', 70);
  std::printf("\ncalls eliminated: %.0f%%; detection verdict unchanged — "
              "the paper's claim.\n",
              100.0 * (1.0 - static_cast<double>(with.runtime_calls) /
                                 static_cast<double>(without.runtime_calls)));
  return 0;
}
