// PTU-style baseline (Intel Performance Tuning Utility, Section 7.1 of the
// paper): aggregates per-line access counts by thread with *no* interleaving
// or memory-reuse awareness and cannot separate true from false sharing.
// Any line with multiple accessing threads and at least one write is
// flagged. The Table 1 bench uses it to demonstrate the false positives
// PREDATOR's word histograms and reuse rules avoid.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"

namespace pred {

class PtuLikeDetector {
 public:
  explicit PtuLikeDetector(LineGeometry geometry = {})
      : geometry_(geometry) {}

  void on_access(Address addr, AccessType type, ThreadId tid);

  struct LineReport {
    std::size_t line = 0;
    std::uint64_t accesses = 0;
    std::uint64_t writes = 0;
    std::uint32_t threads = 0;
    bool flagged = false;  ///< >=2 threads and >=1 write: "sharing problem"
  };

  std::vector<LineReport> report(std::uint64_t min_accesses) const;

 private:
  struct LineInfo {
    std::uint64_t accesses = 0;
    std::uint64_t writes = 0;
    std::map<ThreadId, std::uint64_t> per_thread;
  };

  LineGeometry geometry_;
  mutable Spinlock lock_;
  std::unordered_map<std::size_t, LineInfo> lines_;
};

}  // namespace pred
