// Versioned binary framing shared by every PREDATOR wire stream (trace
// files, snapshot publication, collector transports).
//
// Layer 1 — frames. Every frame is self-delimiting and self-checking:
//
//   magic    u32 = 0x50524652 ("PRFR")
//   version  u16 = kWireVersion (2)
//   type     u16   FrameType
//   length   u32   payload bytes that follow
//   crc32    u32   CRC-32 (IEEE 802.3) of the payload
//   payload  length bytes
//
// A reader positioned at a frame boundary can always either consume the
// frame or fail with a precise reason (bad magic, unsupported version,
// truncation, payload corruption) — the regression suite in
// tests/test_wire_format.cpp exercises each path. Because frames carry
// their own magic, a stream of frames needs no file-level preamble, which
// is what lets the same framing serve both seekable trace files and
// socket/pipe transports.
//
// Layer 2 — tagged fields. Frame payloads are a flat sequence of
// (id u16, kind u16, length u32, bytes) fields. Readers look fields up by
// id and skip ids they do not understand, so new producers can add fields
// without breaking old consumers: the forward-compatibility contract that
// lets a v2.x collector ingest snapshots from newer clients. Nested
// messages (snapshot line entries, ring stats) are encoded as kBytes
// fields whose payload is itself a field sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pred::wire {

inline constexpr std::uint32_t kFrameMagic = 0x50524652u;  // "PRFR"
/// Bumped when the frame header itself changes shape. Payload evolution
/// goes through new field ids instead (skippable by old readers).
inline constexpr std::uint16_t kWireVersion = 2;

enum class FrameType : std::uint16_t {
  kTraceHeader = 1,  ///< trace stream preamble (thread count, totals)
  kThreadTrace = 2,  ///< one thread's access trace
  kHello = 3,        ///< client introduction (uid, pid) on a transport
  kSnapshot = 4,     ///< one encoded MonitorSnapshot
  kGoodbye = 5,      ///< orderly client disconnect
  kRepairPlan = 6,   ///< one encoded RepairPlan (repair/plan_codec.hpp)
};

enum class FrameError : std::uint8_t {
  kOk = 0,
  kBadMagic,     ///< stream is not positioned at a frame
  kVersionSkew,  ///< frame from a newer incompatible framing revision
  kTruncated,    ///< stream ended inside the header or payload
  kBadCrc,       ///< payload bytes do not match the header checksum
};

const char* to_string(FrameError e);

struct Frame {
  FrameType type = FrameType::kTraceHeader;
  std::string payload;
};

/// CRC-32 (IEEE 802.3, reflected) over `size` bytes.
std::uint32_t crc32(const void* data, std::size_t size);
inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

/// Header + payload as a byte string, ready for a file or a pipe.
std::string encode_frame(FrameType type, std::string_view payload);

/// Fixed encoded size of the frame header preceding each payload.
inline constexpr std::size_t kFrameHeaderSize = 16;

/// Reads one frame from a stream positioned at a frame boundary.
FrameError read_frame(std::istream& in, Frame* out);

/// Parses one frame out of `bytes`. On kOk, `*consumed` is the total
/// encoded size. kTruncated means "need more bytes" — the incremental
/// contract FrameStreamParser (src/collect/transport.hpp) relies on.
FrameError parse_frame(std::string_view bytes, Frame* out,
                       std::size_t* consumed);

// ---------------------------------------------------------------------------
// Tagged fields
// ---------------------------------------------------------------------------

enum class FieldKind : std::uint16_t {
  kU64 = 1,    ///< little-endian u64 (u32s widen on the wire)
  kBytes = 2,  ///< opaque bytes / nested field sequence / string
};

/// Appends tagged fields to a payload string.
class FieldWriter {
 public:
  explicit FieldWriter(std::string* out) : out_(out) {}

  void u64(std::uint16_t id, std::uint64_t v);
  void bytes(std::uint16_t id, std::string_view v);
  void str(std::uint16_t id, std::string_view v) { bytes(id, v); }

 private:
  std::string* out_;
};

/// One decoded field view into the payload buffer.
struct Field {
  std::uint16_t id = 0;
  FieldKind kind = FieldKind::kU64;
  std::string_view bytes;  ///< raw value bytes (8 for kU64)

  std::uint64_t as_u64() const;
};

/// Iterates the fields of a payload, skipping unknown kinds/ids gracefully.
/// Malformed sequences (truncated field header or value) stop iteration and
/// set malformed().
class FieldReader {
 public:
  explicit FieldReader(std::string_view payload) : rest_(payload) {}

  /// Next field, or nullopt at end-of-payload / on malformed input.
  std::optional<Field> next();
  bool malformed() const { return malformed_; }

  /// Convenience: scan `payload` for the first field with `id`.
  static std::optional<Field> find(std::string_view payload, std::uint16_t id);

 private:
  std::string_view rest_;
  bool malformed_ = false;
};

}  // namespace pred::wire
