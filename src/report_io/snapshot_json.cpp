#include "report_io/snapshot_json.hpp"

#include "report_io/json_writer.hpp"
#include "report_io/report_json.hpp"

namespace pred {

std::string snapshot_json(const MonitorSnapshot& snap) {
  JsonWriter w;
  w.begin_object();
  w.field("sequence", snap.sequence);
  w.field("events_seen", snap.events_seen);
  w.field("events_dropped", snap.events_dropped);
  w.field("aggregation_passes", snap.aggregation_passes);
  w.field("escalations", snap.escalations);
  w.field("invalidations", snap.invalidations);
  w.field("samples", snap.samples);
  w.field("predictions", snap.predictions);
  w.field("virtual_lines", snap.virtual_lines);
  w.field("lines_tracked", snap.lines_tracked);

  w.key("top_lines").begin_array();
  for (const auto& line : snap.top_lines) {
    w.begin_object();
    w.field("line_start", line.line_start);
    w.field("invalidations", line.invalidations);
    w.field("samples", line.samples);
    w.field("sample_writes", line.sample_writes);
    w.field("predictions", line.predictions);
    w.field("escalated", line.escalated);
    w.field("attributed", line.attributed);
    if (line.attributed) {
      w.field("is_global", line.is_global);
      w.field("object_start", line.object_start);
      w.field("callsite", static_cast<std::uint64_t>(line.callsite));
      w.field("label", line.label);
    }
    w.end_object();
  }
  w.end_array();

  w.key("callsites").begin_array();
  for (const auto& site : snap.callsites) {
    w.begin_object();
    w.field("callsite", static_cast<std::uint64_t>(site.callsite));
    w.field("label", site.label);
    w.field("invalidations", site.invalidations);
    w.field("samples", site.samples);
    w.field("lines", site.lines);
    w.end_object();
  }
  w.end_array();

  w.key("rings").begin_array();
  for (const auto& ring : snap.rings) {
    w.begin_object();
    w.field("produced", ring.produced);
    w.field("consumed", ring.consumed);
    w.field("dropped", ring.dropped);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

std::string rollup_json(const FleetRollup& rollup,
                        const repair::RepairPlan* plan) {
  JsonWriter w;
  w.begin_object();
  w.field("clients", rollup.clients);
  w.field("events_seen", rollup.events_seen);
  w.field("events_dropped", rollup.events_dropped);
  w.field("escalations", rollup.escalations);
  w.field("invalidations", rollup.invalidations);
  w.field("invalidations_upper", rollup.invalidations_upper);
  w.field("samples", rollup.samples);
  w.field("samples_upper", rollup.samples_upper);
  w.field("predictions", rollup.predictions);
  w.field("virtual_lines", rollup.virtual_lines);
  w.field("lines_tracked", rollup.lines_tracked);

  w.key("top_lines").begin_array();
  for (const auto& line : rollup.top_lines) {
    w.begin_object();
    w.field("client_uid", line.client_uid);
    w.field("client_pid", line.client_pid);
    w.field("line_start", line.line_start);
    w.field("invalidations", line.invalidations);
    w.field("invalidations_upper", line.invalidations_upper);
    w.field("samples", line.samples);
    w.field("sample_writes", line.sample_writes);
    w.field("predictions", line.predictions);
    w.field("escalated", line.escalated);
    w.field("attributed", line.attributed);
    w.field("is_global", line.is_global);
    w.field("label", line.label);
    w.end_object();
  }
  w.end_array();

  w.key("sites").begin_array();
  for (const auto& site : rollup.sites) {
    w.begin_object();
    w.field("label", site.label);
    w.field("invalidations", site.invalidations);
    w.field("invalidations_upper", site.invalidations_upper);
    w.field("samples", site.samples);
    w.field("samples_upper", site.samples_upper);
    w.field("lines", site.lines);
    w.field("clients", site.clients);
    w.end_object();
  }
  w.end_array();

  if (plan != nullptr) {
    w.key("repair_plan").begin_object();
    write_plan_fields(w, *plan);
    w.end_object();
  }

  w.end_object();
  return w.str();
}

}  // namespace pred
