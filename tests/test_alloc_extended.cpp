// Tests for the extended allocator API (calloc/realloc/aligned analogues,
// statistics) plus a randomized allocator stress test with invariant
// checking — the fuzz half of the allocator's verification story.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "alloc/predator_allocator.hpp"
#include "common/prng.hpp"

namespace pred {
namespace {

struct ExtAllocFixture : ::testing::Test {
  static RuntimeConfig config() {
    RuntimeConfig cfg;
    cfg.tracking_threshold = 2;
    return cfg;
  }
  ExtAllocFixture() : rt(config()), alloc(rt, 16 * 1024 * 1024) {}
  Runtime rt;
  PredatorAllocator alloc;
};

TEST_F(ExtAllocFixture, ZeroedAllocationIsZero) {
  auto* p = static_cast<unsigned char*>(
      alloc.allocate_zeroed(7, 13, {"z.c:1"}));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 91; ++i) EXPECT_EQ(p[i], 0) << i;
}

TEST_F(ExtAllocFixture, ZeroedAllocationRejectsOverflow) {
  EXPECT_EQ(alloc.allocate_zeroed(~std::size_t{0}, 16, {"z.c:2"}), nullptr);
}

TEST_F(ExtAllocFixture, ReallocGrowsAndPreservesData) {
  auto* p = static_cast<char*>(alloc.allocate(32, {"r.c:1"}));
  std::strcpy(p, "predator");
  auto* q = static_cast<char*>(alloc.reallocate(p, 4096, {"r.c:2"}));
  ASSERT_NE(q, nullptr);
  EXPECT_NE(q, p);  // different size class: moved
  EXPECT_STREQ(q, "predator");
  auto obj = rt.objects().find(reinterpret_cast<Address>(q));
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->size, 4096u);
}

TEST_F(ExtAllocFixture, ReallocShrinkWithinClassKeepsBlock) {
  auto* p = alloc.allocate(60, {"r.c:3"});
  EXPECT_EQ(alloc.reallocate(p, 50, {"r.c:4"}), p);
}

TEST_F(ExtAllocFixture, ReallocNullActsAsAlloc) {
  void* p = alloc.reallocate(nullptr, 128, {"r.c:5"});
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(rt.objects().find(reinterpret_cast<Address>(p)).has_value());
}

TEST_F(ExtAllocFixture, ReallocZeroFrees) {
  void* p = alloc.allocate(64, {"r.c:6"});
  const Address a = reinterpret_cast<Address>(p);
  EXPECT_EQ(alloc.reallocate(p, 0, {"r.c:7"}), nullptr);
  EXPECT_FALSE(rt.objects().find(a).has_value());
}

TEST_F(ExtAllocFixture, AlignedAllocationsRespectAlignment) {
  for (const std::size_t align : {8ul, 16ul, 64ul, 256ul, 4096ul}) {
    void* p = alloc.allocate_aligned(align, 100, {"a.c:1"});
    ASSERT_NE(p, nullptr) << align;
    EXPECT_EQ(reinterpret_cast<Address>(p) % align, 0u) << align;
  }
  EXPECT_EQ(alloc.allocate_aligned(48, 100, {"a.c:2"}), nullptr);  // not pow2
}

TEST_F(ExtAllocFixture, StatsCountOperations) {
  void* a = alloc.allocate(32, {"s.c:1"});
  void* b = alloc.allocate_zeroed(4, 8, {"s.c:2"});
  b = alloc.reallocate(b, 512, {"s.c:3"});
  alloc.deallocate(a);
  alloc.deallocate(b);
  const auto stats = alloc.stats();
  EXPECT_EQ(stats.allocations, 3u);  // alloc + calloc + realloc's fresh block
  EXPECT_EQ(stats.reallocations, 1u);
  EXPECT_EQ(stats.deallocations, 3u);  // realloc freed one + two explicit
  EXPECT_EQ(stats.leaked_for_reporting, 0u);
}

TEST_F(ExtAllocFixture, DirtyObjectsCountAsLeakedForReporting) {
  void* p = alloc.allocate(64, {"s.c:4"});
  const Address a = reinterpret_cast<Address>(p);
  for (int i = 0; i < 50; ++i) {
    rt.handle_access(a, AccessType::kWrite, 0);
    rt.handle_access(a + 8, AccessType::kWrite, 1);
  }
  alloc.deallocate(p);
  EXPECT_EQ(alloc.stats().leaked_for_reporting, 1u);
}

// --- randomized stress -------------------------------------------------------

TEST(AllocFuzz, RandomAllocFreeKeepsInvariants) {
  RuntimeConfig cfg;
  cfg.tracking_threshold = 2;
  Runtime rt(cfg);
  PredatorAllocator alloc(rt, 32 * 1024 * 1024);
  Xorshift64 rng(0xfeedface);

  std::map<Address, std::pair<std::size_t, unsigned char>> live;  // size, tag
  for (int step = 0; step < 20000; ++step) {
    const bool do_alloc = live.empty() || rng.next_below(100) < 60;
    if (do_alloc) {
      const std::size_t size = 1 + rng.next_below(4000);
      auto* p = static_cast<unsigned char*>(
          alloc.allocate(size, {"fuzz.c:1"}));
      ASSERT_NE(p, nullptr);
      const Address a = reinterpret_cast<Address>(p);
      // No live object may overlap the new one.
      auto it = live.upper_bound(a);
      if (it != live.end()) {
        ASSERT_GE(it->first, a + size);
      }
      if (it != live.begin()) {
        --it;
        ASSERT_LE(it->first + it->second.first, a);
      }
      const auto tag = static_cast<unsigned char>(rng.next());
      std::memset(p, tag, size);
      live[a] = {size, tag};
    } else {
      auto it = live.begin();
      std::advance(it, rng.next_below(live.size()));
      auto* p = reinterpret_cast<unsigned char*>(it->first);
      // The object's bytes were never disturbed by other allocations.
      for (std::size_t i = 0; i < it->second.first; i += 97) {
        ASSERT_EQ(p[i], it->second.second) << "corruption at " << i;
      }
      alloc.deallocate(p);
      live.erase(it);
    }
  }
  const auto stats = alloc.stats();
  EXPECT_EQ(stats.allocations - stats.deallocations, live.size());
}

}  // namespace
}  // namespace pred
