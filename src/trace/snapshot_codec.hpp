// SnapshotCodec: the versioned binary wire form of MonitorSnapshot — the
// object a fleet client publishes and a collector ingests. Built on the
// shared frame/field layer (trace/wire_format.hpp): one kSnapshot frame
// whose payload is a tagged-field sequence, with nested field sequences for
// line entries, callsite entries, and ring stats. Every field is skippable,
// so a v2 collector keeps ingesting snapshots from clients that have grown
// new telemetry, and the CRC in the frame header rejects corrupt or torn
// frames before any of it is interpreted.
//
// Client identity travels inside the payload (uid + pid + sequence), not in
// the transport, so a frame is attributable no matter how it arrived —
// socketpair, unix socket, file, or in-process loopback.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "monitor/monitor.hpp"

namespace pred {

/// Identity a publishing client stamps on every snapshot frame.
struct ClientId {
  std::uint64_t uid = 0;  ///< unique per Session (see Session::uid())
  std::uint64_t pid = 0;  ///< OS process id, for operator display
};

struct DecodedSnapshot {
  ClientId client;
  MonitorSnapshot snapshot;
};

class SnapshotCodec {
 public:
  /// Encodes a snapshot as one complete kSnapshot frame (header included).
  static std::string encode(const MonitorSnapshot& snap,
                            const ClientId& client);

  /// Decodes a kSnapshot frame *payload* (the frame layer has already
  /// verified magic/version/CRC). Unknown fields are skipped; missing
  /// fields default to zero/empty. Returns false only on malformed field
  /// structure.
  static bool decode(std::string_view payload, DecodedSnapshot* out);

  /// Encodes a kHello / kGoodbye frame for transport session brackets.
  static std::string encode_hello(const ClientId& client);
  static std::string encode_goodbye(const ClientId& client);
  static bool decode_client(std::string_view payload, ClientId* out);
};

}  // namespace pred
