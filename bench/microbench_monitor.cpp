// Monitor overhead microbench: the live monitor's two costs, measured
// separately.
//
// Phase A — fast path, monitor attached (the acceptance bar: < 5%).
//   The microbench_fastpath workload (4 threads, disjoint pre-threshold
//   lines, thresholds set so nothing escalates) run with the monitor off
//   vs. started. The inline fast path emits no events, so attaching the
//   monitor should cost only the cold `attached_monitor()` check on the
//   slow path — i.e. nothing measurable here.
//
// Phase B — tracked path, every access emitting (the worst case).
//   tracking_threshold = 1 and sampling rate 1.0, so every access runs the
//   full tracked path and publishes a monitor event. This bounds the emit
//   cost (TLS check + one SPSC ring push) relative to the tracked path's
//   own spinlock + histogram work, and exercises drop-oldest shedding.
//
// Usage: microbench_monitor [writes_per_thread] [--json FILE]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <thread>
#include <vector>

#include "api/predator.hpp"
#include "bench_util.hpp"

namespace {

constexpr std::uint32_t kThreads = 4;
constexpr std::size_t kLinesPerThread = 8;

struct Rates {
  double accesses_per_sec = 0.0;
  std::uint64_t events_seen = 0;
  std::uint64_t events_dropped = 0;
};

// One measured run: the microbench_fastpath access pattern (each thread
// round-robins writes over its own 8 lines) against a session configured by
// `tracked` (pre-threshold fast path vs. always-tracked slow path), with the
// monitor optionally attached.
Rates run_once(bool tracked, bool with_monitor,
               std::uint64_t writes_per_thread) {
  pred::SessionOptions o;
  o.heap_size = 16 * 1024 * 1024;
  if (tracked) {
    o.runtime.tracking_threshold = 1;
    o.runtime.prediction_threshold = ~std::uint64_t{0} >> 1;
    o.runtime.set_sampling_rate(1.0);
  } else {
    o.runtime.tracking_threshold = ~std::uint64_t{0} >> 1;
    o.runtime.prediction_threshold = ~std::uint64_t{0} >> 1;
  }
  pred::Session session(o);
  if (with_monitor) session.monitor().start();

  const pred::CallsiteId cs = session.intern_frames({"microbench_monitor"});
  std::vector<long*> blocks(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    blocks[t] = static_cast<long*>(session.alloc(kLinesPerThread * 64, cs));
    if (blocks[t] == nullptr) {
      std::fprintf(stderr, "allocation failed\n");
      std::exit(1);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      pred::ScopedThread guard(session, t);
      long* block = blocks[t];
      for (std::uint64_t i = 0; i < writes_per_thread; ++i) {
        session.record(&block[(i % kLinesPerThread) * 8],
                       pred::AccessType::kWrite, t, 8);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto end = std::chrono::steady_clock::now();

  Rates r;
  r.accesses_per_sec = static_cast<double>(kThreads) *
                       static_cast<double>(writes_per_thread) /
                       std::chrono::duration<double>(end - start).count();
  if (with_monitor) {
    session.monitor().stop();
    const pred::MonitorSnapshot snap = session.monitor().snapshot();
    r.events_seen = snap.events_seen;
    r.events_dropped = snap.events_dropped;
  }
  return r;
}

// Warm-up, then best-of-3 measured passes: on small/shared hosts a single
// pass jitters more than the overhead being measured.
Rates run_measured(bool tracked, bool with_monitor, std::uint64_t writes) {
  run_once(tracked, with_monitor, writes / 8);
  Rates best;
  for (int pass = 0; pass < 3; ++pass) {
    const Rates r = run_once(tracked, with_monitor, writes);
    if (r.accesses_per_sec > best.accesses_per_sec) best = r;
  }
  return best;
}

double overhead_pct(double base, double with_monitor) {
  if (with_monitor <= 0.0) return 0.0;
  return (base / with_monitor - 1.0) * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t writes = 4'000'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      writes = std::strtoull(argv[i], nullptr, 10);
      if (writes == 0) {
        std::fprintf(stderr,
                     "usage: %s [writes_per_thread > 0] [--json FILE]\n",
                     argv[0]);
        return 1;
      }
    }
  }

  std::printf("monitor overhead: %u threads x %" PRIu64
              " disjoint-line writes\n\n",
              kThreads, writes);

  // Phase A: pre-threshold fast path; nothing ever emits.
  const Rates fast_base = run_measured(/*tracked=*/false, false, writes);
  const Rates fast_mon = run_measured(/*tracked=*/false, true, writes);
  const double fast_over =
      overhead_pct(fast_base.accesses_per_sec, fast_mon.accesses_per_sec);
  std::printf("phase A: fast path (no escalation)\n");
  std::printf("  %-28s %15.0f accesses/sec\n", "monitor off",
              fast_base.accesses_per_sec);
  std::printf("  %-28s %15.0f accesses/sec  (%+.2f%% overhead, "
              "%" PRIu64 " events)\n",
              "monitor attached", fast_mon.accesses_per_sec, fast_over,
              fast_mon.events_seen);

  // Phase B: everything tracked, every access sampled and emitted.
  const std::uint64_t tracked_writes = writes / 8;  // slow path is ~10x slower
  const Rates slow_base = run_measured(/*tracked=*/true, false, tracked_writes);
  const Rates slow_mon = run_measured(/*tracked=*/true, true, tracked_writes);
  const double slow_over =
      overhead_pct(slow_base.accesses_per_sec, slow_mon.accesses_per_sec);
  std::printf("\nphase B: tracked path (threshold 1, sampling 1.0)\n");
  std::printf("  %-28s %15.0f accesses/sec\n", "monitor off",
              slow_base.accesses_per_sec);
  std::printf("  %-28s %15.0f accesses/sec  (%+.2f%% overhead, "
              "%" PRIu64 " events, %" PRIu64 " dropped)\n",
              "monitor attached", slow_mon.accesses_per_sec, slow_over,
              slow_mon.events_seen, slow_mon.events_dropped);

  if (!json_path.empty()) {
    pred::bench::JsonWriter json;
    json.add("fastpath_base_aps", fast_base.accesses_per_sec);
    json.add("fastpath_monitor_aps", fast_mon.accesses_per_sec);
    json.add("fastpath_overhead_pct", fast_over);
    json.add("tracked_base_aps", slow_base.accesses_per_sec);
    json.add("tracked_monitor_aps", slow_mon.accesses_per_sec);
    json.add("tracked_overhead_pct", slow_over);
    json.add("tracked_events_seen",
             static_cast<double>(slow_mon.events_seen));
    json.add("tracked_events_dropped",
             static_cast<double>(slow_mon.events_dropped));
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "json: %s\n", json_path.c_str());
  }
  return 0;
}
