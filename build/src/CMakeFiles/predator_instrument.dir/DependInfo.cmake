
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instrument/interp.cpp" "src/CMakeFiles/predator_instrument.dir/instrument/interp.cpp.o" "gcc" "src/CMakeFiles/predator_instrument.dir/instrument/interp.cpp.o.d"
  "/root/repo/src/instrument/ir.cpp" "src/CMakeFiles/predator_instrument.dir/instrument/ir.cpp.o" "gcc" "src/CMakeFiles/predator_instrument.dir/instrument/ir.cpp.o.d"
  "/root/repo/src/instrument/ir_parser.cpp" "src/CMakeFiles/predator_instrument.dir/instrument/ir_parser.cpp.o" "gcc" "src/CMakeFiles/predator_instrument.dir/instrument/ir_parser.cpp.o.d"
  "/root/repo/src/instrument/pass.cpp" "src/CMakeFiles/predator_instrument.dir/instrument/pass.cpp.o" "gcc" "src/CMakeFiles/predator_instrument.dir/instrument/pass.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/predator_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
