// Tests for report diffing: identity matching across runs, status
// classification, noise tolerance, and the end-to-end before/after-fix
// workflow CI gates rely on.
#include <gtest/gtest.h>

#include "report_io/report_diff.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

SessionOptions options() {
  SessionOptions o;
  o.heap_size = 32 * 1024 * 1024;
  return o;
}

struct RunResult {
  Report report;
  // The session must outlive the callsite references; keep it.
  std::shared_ptr<Session> session;
  const CallsiteTable& callsites() const {
    return session->runtime().callsites();
  }
};

RunResult run(const char* name, std::uint32_t fix_mask = 0,
              std::uint64_t scale = 1, std::size_t offset = 0) {
  RunResult r;
  r.session = std::make_shared<Session>(options());
  const wl::Workload* w = wl::find_workload(name);
  EXPECT_NE(w, nullptr);
  wl::Params p;
  p.threads = 8;
  p.fix_mask = fix_mask;
  p.scale = scale;
  p.offset = offset;
  w->run_replay(*r.session, p);
  r.report = r.session->report();
  return r;
}

TEST(ReportDiff, IdentityIsStableAcrossRuns) {
  const RunResult a = run("histogram");
  const RunResult b = run("histogram");
  ASSERT_FALSE(a.report.findings.empty());
  ASSERT_FALSE(b.report.findings.empty());
  EXPECT_EQ(finding_identity(a.report.findings[0], a.callsites()),
            finding_identity(b.report.findings[0], b.callsites()));
}

TEST(ReportDiff, IdenticalRunsDiffClean) {
  const RunResult a = run("histogram");
  const RunResult b = run("histogram");
  const ReportDiff d =
      diff_reports(a.report, a.callsites(), b.report, b.callsites());
  EXPECT_TRUE(d.clean());
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].status, DiffStatus::kUnchanged);
}

TEST(ReportDiff, FixShowsAsFixed) {
  // linear_regression's fix (two full lines per slot) removes even the
  // latent findings, so the identity disappears entirely.
  const RunResult buggy = run("linear_regression", 0, 1, /*offset=*/24);
  const RunResult fixed = run("linear_regression", ~0u, 1, 24);
  const ReportDiff d = diff_reports(buggy.report, buggy.callsites(),
                                    fixed.report, fixed.callsites());
  EXPECT_EQ(d.fixed, 1u);
  EXPECT_EQ(d.fresh, 0u);
  EXPECT_EQ(d.regressed, 0u);
  EXPECT_TRUE(d.clean());
  const std::string text = format_diff(d);
  EXPECT_NE(text.find("FIXED"), std::string::npos);
  EXPECT_NE(text.find("linear_regression-pthread.c:133"), std::string::npos);
}

TEST(ReportDiff, PartialFixKeepsIdentityAsLatent) {
  // histogram's fix pads slots to exactly one line: the observed problem
  // disappears but a latent (double-line) prediction remains on the same
  // object, so the identity persists and the diff reports improvement or
  // stability — never a silent "fixed".
  const RunResult buggy = run("histogram");
  const RunResult fixed = run("histogram", ~0u);
  const ReportDiff d = diff_reports(buggy.report, buggy.callsites(),
                                    fixed.report, fixed.callsites());
  EXPECT_EQ(d.fixed, 0u);
  ASSERT_FALSE(d.entries.empty());
  bool histogram_entry = false;
  for (const auto& e : d.entries) {
    if (e.identity.find("histogram-pthread.c:213") == std::string::npos) {
      continue;
    }
    histogram_entry = true;
    EXPECT_TRUE(e.was_observed);
    EXPECT_FALSE(e.now_observed);
  }
  EXPECT_TRUE(histogram_entry);
}

TEST(ReportDiff, IntroducedBugShowsAsNew) {
  const RunResult fixed = run("linear_regression", ~0u, 1, 24);
  const RunResult buggy = run("linear_regression", 0, 1, 24);
  const ReportDiff d = diff_reports(fixed.report, fixed.callsites(),
                                    buggy.report, buggy.callsites());
  EXPECT_EQ(d.fresh, 1u);
  EXPECT_FALSE(d.clean());
  EXPECT_NE(format_diff(d).find("NEW"), std::string::npos);
}

TEST(ReportDiff, GrowthBeyondNoiseIsRegression) {
  const RunResult small = run("histogram", 0, /*scale=*/1);
  const RunResult large = run("histogram", 0, /*scale=*/4);
  DiffOptions opts;
  opts.noise_fraction = 0.25;
  const ReportDiff d = diff_reports(small.report, small.callsites(),
                                    large.report, large.callsites(), opts);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].status, DiffStatus::kRegressed);
  EXPECT_FALSE(d.clean());
}

TEST(ReportDiff, ShrinkBeyondNoiseIsImprovementNotFailure) {
  const RunResult large = run("histogram", 0, 4);
  const RunResult small = run("histogram", 0, 1);
  const ReportDiff d = diff_reports(large.report, large.callsites(),
                                    small.report, small.callsites());
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].status, DiffStatus::kImproved);
  EXPECT_TRUE(d.clean());
}

TEST(ReportDiff, EmptyBothSides) {
  Report a, b;
  CallsiteTable cs;
  const ReportDiff d = diff_reports(a, cs, b, cs);
  EXPECT_TRUE(d.clean());
  EXPECT_EQ(format_diff(d), "No false sharing findings on either side.\n");
}

TEST(ReportDiff, ObservedToLatentTransitionIsAnnotated) {
  // streamcluster's work_mem: observed when padded to 32, latent-only when
  // padded to 64 (prediction persists for the doubled-line scenario).
  const RunResult buggy = run("streamcluster");
  const RunResult fixed = run("streamcluster", ~0u);
  const ReportDiff d = diff_reports(buggy.report, buggy.callsites(),
                                    fixed.report, fixed.callsites());
  const std::string text = format_diff(d);
  EXPECT_NE(text.find("streamcluster.cpp:985"), std::string::npos);
  // The 985 site's entry must not be a regression (it improved or went
  // latent); total regressions can stem only from genuinely new sites.
  for (const auto& e : d.entries) {
    if (e.identity.find("985") != std::string::npos) {
      EXPECT_NE(e.status, DiffStatus::kRegressed) << text;
    }
  }
}

}  // namespace
}  // namespace pred
