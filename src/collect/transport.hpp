// Transports carrying snapshot frames from fleet clients to a collector.
//
// The wire frame (trace/wire_format.hpp) is self-delimiting and
// self-checking, so a transport is nothing more than an ordered byte
// stream; everything here is plumbing around that fact:
//
//   SnapshotSink        — where a client writes encoded frames.
//   LoopbackSink        — in-process: frames go straight into a Collector,
//                         synchronously. Deterministic, no fds — the
//                         transport the tests and benches use.
//   FdSink              — frames written to a file descriptor (pipe,
//                         socketpair, unix-domain socket).
//   FrameStreamParser   — incremental reassembly on the collector side:
//                         feed() arbitrary byte chunks, next() yields
//                         complete verified frames. A corrupt prefix
//                         poisons the stream (there is no resync point in
//                         a byte stream whose framing you can no longer
//                         trust).
//
// Plus the small POSIX helpers the CLI daemon/fleet demo need: socketpair
// creation, unix-socket listen/connect, and write-fully.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "trace/wire_format.hpp"

namespace pred {

class Collector;

/// Destination for encoded wire frames (a client-side abstraction:
/// Session::publish() produces the bytes, a sink moves them).
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  /// Delivers one complete frame. False on transport failure.
  virtual bool send(std::string_view frame_bytes) = 0;
};

/// In-process transport: send() ingests into the collector synchronously.
class LoopbackSink : public SnapshotSink {
 public:
  explicit LoopbackSink(Collector& collector) : collector_(&collector) {}
  bool send(std::string_view frame_bytes) override;

 private:
  Collector* collector_;
};

/// Writes frames to a file descriptor. Handles short writes and EINTR;
/// EPIPE (collector went away) surfaces as false.
class FdSink : public SnapshotSink {
 public:
  /// Takes ownership of `fd` when `owned` (closed on destruction).
  explicit FdSink(int fd, bool owned = true) : fd_(fd), owned_(owned) {}
  ~FdSink() override;
  FdSink(const FdSink&) = delete;
  FdSink& operator=(const FdSink&) = delete;

  bool send(std::string_view frame_bytes) override;
  int fd() const { return fd_; }

 private:
  int fd_;
  bool owned_;
};

/// Reassembles frames from an arbitrary chunking of the byte stream.
class FrameStreamParser {
 public:
  /// Appends raw transport bytes.
  void feed(std::string_view bytes);

  /// Extracts the next complete frame. Returns false when more bytes are
  /// needed — or when the stream is poisoned; check error() to tell the
  /// two apart. Verified-bad input (wrong magic, CRC mismatch, version
  /// skew) permanently poisons the parser.
  bool next(wire::Frame* out);

  /// kOk / kTruncated mean "healthy, waiting for bytes"; anything else is
  /// a poisoned stream.
  wire::FrameError error() const { return error_; }
  bool poisoned() const {
    return error_ != wire::FrameError::kOk &&
           error_ != wire::FrameError::kTruncated;
  }

  /// Bytes buffered but not yet consumed (nonzero at EOF means the peer
  /// died mid-frame).
  std::size_t pending_bytes() const { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  std::size_t consumed_ = 0;
  wire::FrameError error_ = wire::FrameError::kOk;
};

// ---------------------------------------------------------------------------
// POSIX plumbing for the CLI daemon / fleet demo
// ---------------------------------------------------------------------------

/// Writes all of `bytes` to `fd`, retrying short writes and EINTR.
bool write_all_fd(int fd, std::string_view bytes);

/// AF_UNIX stream socketpair; returns false on failure. fds[0]/fds[1] are
/// symmetric ends (parent keeps one, a forked client the other).
bool make_socketpair(int fds[2]);

/// Binds and listens on an AF_UNIX stream socket at `path` (unlinking any
/// stale socket first). Returns the listening fd, or -1.
int listen_unix(const std::string& path, int backlog = 64);

/// Connects to the AF_UNIX socket at `path`. Returns the fd, or -1.
int connect_unix(const std::string& path);

}  // namespace pred
