# Empty dependencies file for predator_api.
# This may be replaced when dependencies are built.
