// Thread-local write staging (the redesigned hot-path back end).
//
// The seed runtime paid a shared `fetch_add` on the per-line write counter
// for every pre-threshold write — an atomic RMW whose cache line is shared
// with seven neighboring counters, so the detector itself suffered the very
// false sharing it hunts. This stage turns pre-threshold write counting
// into a plain thread-local increment: each OS thread owns a small
// direct-mapped block of (region, line) -> count slots, and staged counts
// drain into the shared counters in batches.
//
// Exactness contract: escalation at TrackingThreshold happens on exactly
// the same access as the unstaged path whenever a line's pre-threshold
// writes come from one thread at a time (every deterministic test, every
// replay, and the common monotone live stream). Each staged increment
// checks `base + count >= threshold`, where `base` is the shared counter
// value snapshotted when the slot was filled; crossing drains the slot and
// escalates immediately. With concurrent pre-threshold writers the sum can
// cross the threshold before any single thread's view does; the epoch
// flush (every kEpochLength staged writes per thread) bounds that delay,
// and the drain itself re-checks both thresholds.
//
// Drain points: slot eviction (direct-mapped collision), inline threshold
// crossing, the per-thread epoch, `Session::flush()` / `ScopedThread`
// unbind / `BatchBuffer::flush`, `build_report`, and thread exit.
//
// Lifetime safety: slots reference runtimes/regions by raw pointer. A
// global generation counter is bumped whenever any Runtime is destroyed;
// slots tagged with an older generation are discarded instead of drained,
// so a deferred drain can never touch a dead runtime's shadow memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/cacheline.hpp"

namespace pred {

class Runtime;
class ShadowSpace;

namespace detail {
/// Global runtime generation counter; read inline on the hot path, written
/// only by Runtime destruction.
extern std::atomic<std::uint64_t> runtime_generation_counter;
}  // namespace detail

/// Current global runtime generation. Bumped by every Runtime destruction;
/// staged slots and region-cache entries from older generations are stale.
inline std::uint64_t runtime_generation() {
  return detail::runtime_generation_counter.load(std::memory_order_acquire);
}

/// Drains every staged write counter held by the calling thread into the
/// owning runtimes' shared counters (running threshold checks). Safe to
/// call at any time; stale-generation slots are dropped.
void flush_staged_writes();

struct StagedSlot {
  Runtime* rt = nullptr;
  ShadowSpace* region = nullptr;  ///< nullptr marks an empty slot
  std::uint64_t gen = 0;
  std::uint64_t base = 0;  ///< shared counter value when the slot was filled
  std::uint32_t line = 0;
  std::uint32_t count = 0;  ///< staged (not yet published) writes
};

/// Per-OS-thread staging block. One instance lives in thread-local storage;
/// the runtime reaches it through `thread_write_stage()`.
class WriteStage {
 public:
  static constexpr std::size_t kSlots = 64;  // direct-mapped
  /// Staged writes per epoch; an epoch ends with a full drain, bounding
  /// both the staleness of shared counters and multi-writer escalation lag.
  static constexpr std::uint32_t kEpochLength = 4096;

  ~WriteStage() { flush(); }

  /// Drains all valid slots and starts a new epoch.
  void flush();

  static std::size_t slot_index(const ShadowSpace* region, std::size_t line) {
    return (line ^ (reinterpret_cast<std::uintptr_t>(region) >> 6)) &
           (kSlots - 1);
  }

  StagedSlot slots[kSlots];
  std::uint32_t staged_since_epoch = 0;
};

/// The calling thread's staging block.
WriteStage& thread_write_stage();

/// One-entry hot-region cache consulted by the inline fast path in
/// Runtime::handle_access. It caches everything needed to resolve a
/// single-word write without the out-of-line slow path: the staged region's
/// bounds, the line shift (power-of-two geometry only), and the thread's
/// staging block. The fast path then requires an exact staged-slot match
/// for the computed line — a slot occupied by (region, line, gen) proves
/// the line had no tracker when staged, and every same-thread event that
/// could give the line a tracker (escalation, virtual-line fan-out) purges
/// the slot first. So cache validity is re-derived from slot occupancy on
/// every access; only the slow path fills the cache (stage_write), and only
/// runtime destruction (generation bump) wholesale-invalidates it.
struct FastPathCache {
  const Runtime* rt = nullptr;  ///< nullptr = invalid
  ShadowSpace* region = nullptr;
  std::uint64_t gen = 0;
  Address region_begin = 0;
  Address region_end = 0;
  WriteStage* stage = nullptr;
  std::uint64_t tracking_threshold = 0;
  std::uint32_t line_shift = 0;  ///< log2(line_size)
  std::size_t word_mask = 0;     ///< word_size - 1
  std::size_t word_size = 0;
};

inline thread_local FastPathCache t_fastpath_cache;

}  // namespace pred
