// tensor_parallel: a Huron-style affinity-repair case. A shared output
// tensor is updated over repeated sweeps; the buggy variant assigns element
// i to thread i % threads (round-robin ownership, the "obvious" parallel
// loop), so every cache line of the tensor is written by many threads every
// sweep. The repaired variant blocks ownership into contiguous per-thread
// ranges — the Huron affinity fix: change which thread touches which data,
// not the data layout. Element values depend only on the element index, so
// the checksum is identical across variants.
#include "common/check.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

constexpr std::uint64_t kSweeps = 64;
constexpr std::uint64_t kElemsPerThread = 32;

class TensorParallel final : public WorkloadImpl<TensorParallel> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "tensor_parallel",
        .suite = "numa",
        .sites = {{.where = "tensor_parallel.cc:out",
                   .needs_prediction = false,
                   .newly_discovered = false,
                   .paper_improvement_pct = 0.0}},
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t elems = kElemsPerThread * n;
    const std::uint64_t sweeps = kSweeps * p.scale;
    const bool blocked = p.site_fixed(0);

    auto* out = static_cast<std::uint64_t*>(
        h.alloc(elems * sizeof(std::uint64_t), {"tensor_parallel.cc:out"}));
    PRED_CHECK(out != nullptr);
    for (std::uint64_t i = 0; i < elems; ++i) out[i] = 0;

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      for (std::uint64_t s = 0; s < sweeps; ++s) {
        for (std::uint64_t k = 0; k < kElemsPerThread; ++k) {
          // Buggy: element ownership interleaves threads across every line.
          // Fixed: thread t owns the contiguous block [t*bpt, (t+1)*bpt) —
          // 256 bytes per thread, line-aligned, so no line is ever shared.
          const std::uint64_t i =
              blocked ? t * kElemsPerThread + k : k * n + t;
          sink.think(4);  // index arithmetic + the multiply below
          sink.read(&out[i], 8);
          out[i] += i * 31 + s;
          sink.write(&out[i], 8);
        }
      }
    });

    Result r;
    for (std::uint64_t i = 0; i < elems; ++i) {
      r.checksum ^= out[i] + i;
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_tensor_parallel() {
  return std::make_unique<TensorParallel>();
}

}  // namespace pred::wl
