// Tests for the comparison baselines: the SHERIFF-style observed-only
// write-write detector and the PTU-style aggregator — including the
// characteristic blind spots the paper exploits (SHERIFF misses read-write
// and latent false sharing; PTU cannot separate true from false sharing).
#include <gtest/gtest.h>

#include "baseline/ptu_like.hpp"
#include "baseline/sheriff_like.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;

TEST(SheriffLike, DetectsWriteWriteFalseSharing) {
  SheriffLikeDetector d;
  for (int i = 0; i < 100; ++i) {
    d.on_write(1024, 0);      // word 0
    d.on_write(1024 + 8, 1);  // word 1, same line
  }
  const auto rep = d.report(50);
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_TRUE(rep[0].write_write_false_sharing);
  EXPECT_EQ(rep[0].writer_threads, 2u);
  EXPECT_GT(rep[0].interleavings, 100u);
}

TEST(SheriffLike, MissesReadWriteFalseSharing) {
  SheriffLikeDetector d;
  for (int i = 0; i < 100; ++i) {
    d.on_access(2048, W, 0);
    d.on_access(2048 + 8, R, 1);  // reader is invisible to SHERIFF
  }
  const auto rep = d.report(1);
  EXPECT_TRUE(rep.empty());
}

TEST(SheriffLike, SingleWriterIsNotFlagged) {
  SheriffLikeDetector d;
  for (int i = 0; i < 1000; ++i) d.on_write(4096 + (i % 8) * 8, 3);
  const auto rep = d.report(1);
  EXPECT_TRUE(rep.empty());  // no interleavings at all
}

TEST(SheriffLike, TrueSharingIsNotWriteWriteFalseSharing) {
  SheriffLikeDetector d;
  for (int i = 0; i < 100; ++i) d.on_write(8192, i % 2);  // same word
  const auto rep = d.report(10);
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_FALSE(rep[0].write_write_false_sharing);
}

TEST(SheriffLike, ReportSortedByInterleavings) {
  SheriffLikeDetector d;
  for (int i = 0; i < 20; ++i) {
    d.on_write(0, i % 2);
  }
  for (int i = 0; i < 200; ++i) {
    d.on_write(640, i % 2);
  }
  const auto rep = d.report(5);
  ASSERT_EQ(rep.size(), 2u);
  EXPECT_EQ(rep[0].line, 10u);
  EXPECT_GE(rep[0].interleavings, rep[1].interleavings);
}

TEST(PtuLike, FlagsMultiThreadedWrittenLines) {
  PtuLikeDetector d;
  for (int i = 0; i < 100; ++i) {
    d.on_access(1024, W, 0);
    d.on_access(1032, R, 1);
  }
  const auto rep = d.report(50);
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_TRUE(rep[0].flagged);
  EXPECT_EQ(rep[0].threads, 2u);
}

TEST(PtuLike, CannotDistinguishTrueSharing) {
  // The PTU blind spot: a plain contended counter (true sharing) is flagged
  // exactly like false sharing — a false positive PREDATOR avoids.
  PtuLikeDetector d;
  for (int i = 0; i < 100; ++i) d.on_access(2048, W, i % 4);  // same word!
  const auto rep = d.report(50);
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_TRUE(rep[0].flagged);
}

TEST(PtuLike, SingleThreadLinesNotFlagged) {
  PtuLikeDetector d;
  for (int i = 0; i < 100; ++i) d.on_access(4096, W, 2);
  const auto rep = d.report(50);
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_FALSE(rep[0].flagged);
}

TEST(PtuLike, ThresholdFiltersColdLines) {
  PtuLikeDetector d;
  d.on_access(0, W, 0);
  d.on_access(0, W, 1);
  EXPECT_TRUE(d.report(10).empty());
}

}  // namespace
}  // namespace pred
