# Empty dependencies file for predator_instrument.
# This may be replaced when dependencies are built.
