// Runtime configuration: the thresholds and sampling parameters of
// Sections 2.4 and 3.2 of the paper, plus the modeled line geometry.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/cacheline.hpp"

namespace pred {

/// Which accesses the instrumentation layer forwards to the runtime
/// (Section 2.4.2: "PREDATOR could selectively instrument both reads and
/// writes or only writes").
enum class InstrumentMode : std::uint8_t {
  kReadsAndWrites,  ///< default: full detection (read-write + write-write FS)
  kWritesOnly,      ///< cheaper; detects only write-write false sharing
};

struct RuntimeConfig {
  LineGeometry geometry{};

  /// Writes to a physical line before detailed (word + invalidation)
  /// tracking starts (the paper's TrackingThreshold, Section 2.4.1). Lines
  /// with fewer writes can never be significant bottlenecks, so skipping
  /// them saves both time and tracker memory.
  std::uint64_t tracking_threshold = 100;

  /// Writes to a line before the predictor analyzes its word histogram for
  /// latent false sharing (the paper's PredictionThreshold, Section 3.2,
  /// step 3). Must be >= tracking_threshold.
  std::uint64_t prediction_threshold = 256;

  /// Minimum invalidations for a line (physical or virtual) to appear in the
  /// final report. Filters noise the way the paper's "large number of cache
  /// invalidations" phrasing implies (Section 2.3.1).
  std::uint64_t report_invalidation_threshold = 100;

  /// Sampling on problematic lines (Section 2.4.3): of every
  /// `sample_interval` accesses to a tracked line, only the first
  /// `sample_window` are recorded in detail. Defaults give the paper's 1%.
  std::uint64_t sample_window = 10'000;
  std::uint64_t sample_interval = 1'000'000;

  /// Enables the prediction engine (PREDATOR vs PREDATOR-NP in Figure 7).
  bool prediction_enabled = true;

  InstrumentMode instrument_mode = InstrumentMode::kReadsAndWrites;

  /// O(1) region resolution: flat shadow page map plus a per-thread
  /// last-region cache (runtime/region_map.hpp). Off = the seed's linear
  /// scan over registered regions. Ablation knob for bench/microbench_fastpath.
  bool fast_region_lookup = true;

  /// Thread-local staging of pre-threshold write counts
  /// (runtime/write_stage.hpp). Off = the seed's shared fetch_add per
  /// write. Detection results are identical on single-writer streams and
  /// deterministic replays; see write_stage.hpp for the multi-writer bound.
  bool staged_write_counters = true;

  /// Lock-free tracked path (runtime/cache_tracker.hpp): packed 64-bit
  /// history table updated by CAS, atomic word histogram with a monotone
  /// owner word, per-OS-thread striped sampling clocks, and RCU-published
  /// virtual-line snapshots — no per-line spinlock on sampled accesses.
  /// Off = the seed's spinlocked tracker, kept as the ablation baseline
  /// (bench/microbench_tracked) and the determinism reference; the two
  /// modes report bit-identical counts on single-OS-thread workloads.
  bool lock_free_tracker = true;

  /// Sync-aware suppression (SmartTrack-style ownership/epoch fast state,
  /// runtime/cache_tracker.hpp): each tracker carries one packed word
  /// (owner tid, owner epoch) and accesses by the same thread since its
  /// last synchronization event retire with a single relaxed load — no
  /// history-table CAS, no sampling-stripe tick. A per-thread epoch
  /// counter bumps on Session::sync / Session::handoff; any cross-thread
  /// access or epoch mismatch falls through to the full path unchanged
  /// and re-claims the word. Off = PR 3 behavior, kept as the determinism
  /// reference; both modes report bit-identical counts on single-OS-thread
  /// workloads.
  bool sync_suppression = true;

  /// Convenience: set the sampling rate keeping the paper's 10k window.
  void set_sampling_rate(double rate) {
    if (rate >= 1.0) {
      sample_interval = sample_window;
      return;
    }
    sample_interval =
        static_cast<std::uint64_t>(static_cast<double>(sample_window) / rate);
  }

  double sampling_rate() const {
    return static_cast<double>(sample_window) /
           static_cast<double>(sample_interval);
  }
};

}  // namespace pred
