#include "instrument/analysis/callgraph.hpp"

#include <algorithm>

namespace pred::ir {

namespace {

/// Iterative Tarjan SCC. Recursive formulations overflow the stack on deep
/// call chains; the explicit frame stack has no such limit.
struct Tarjan {
  const std::vector<std::vector<std::uint32_t>>& succs;
  std::vector<std::uint32_t> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<std::uint32_t> stack;
  std::vector<std::vector<std::uint32_t>> components;
  std::uint32_t next_index = 0;

  static constexpr std::uint32_t kUnvisited = 0xffffffffu;

  explicit Tarjan(const std::vector<std::vector<std::uint32_t>>& s)
      : succs(s),
        index(s.size(), kUnvisited),
        lowlink(s.size(), 0),
        on_stack(s.size(), false) {}

  void run(std::uint32_t root) {
    struct Frame {
      std::uint32_t v;
      std::size_t next_edge;
    };
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.next_edge < succs[fr.v].size()) {
        const std::uint32_t w = succs[fr.v][fr.next_edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[fr.v] = std::min(lowlink[fr.v], index[w]);
        }
      } else {
        const std::uint32_t v = fr.v;
        if (lowlink[v] == index[v]) {
          components.emplace_back();
          std::uint32_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            components.back().push_back(w);
          } while (w != v);
        }
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }
};

}  // namespace

CallGraph::CallGraph(const Module& module) {
  const std::size_t n = module.functions.size();
  callees_.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (const BasicBlock& bb : module.functions[f].blocks) {
      for (const Instr& in : bb.instrs) {
        if (in.op == Opcode::kCall) {
          ++call_sites_;
          callees_[f].push_back(static_cast<std::uint32_t>(in.imm));
        }
      }
    }
    std::sort(callees_[f].begin(), callees_[f].end());
    callees_[f].erase(std::unique(callees_[f].begin(), callees_[f].end()),
                      callees_[f].end());
  }

  Tarjan t(callees_);
  for (std::uint32_t f = 0; f < n; ++f) {
    if (t.index[f] == Tarjan::kUnvisited) t.run(f);
  }

  // Tarjan pops a component only after everything it reaches outside itself
  // has been popped, so component emission order IS a bottom-up order.
  scc_members_ = std::move(t.components);
  scc_of_.assign(n, 0);
  in_cycle_.assign(n, false);
  for (std::uint32_t c = 0; c < scc_members_.size(); ++c) {
    for (const std::uint32_t f : scc_members_[c]) {
      scc_of_[f] = c;
      in_cycle_[f] = scc_members_[c].size() > 1;
    }
  }
  for (std::uint32_t f = 0; f < n; ++f) {
    if (std::binary_search(callees_[f].begin(), callees_[f].end(), f)) {
      in_cycle_[f] = true;  // direct self-recursion within a singleton SCC
    }
  }

  bottom_up_.reserve(n);
  for (const auto& comp : scc_members_) {
    for (const std::uint32_t f : comp) bottom_up_.push_back(f);
  }
}

}  // namespace pred::ir
