#include "repair/planner.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace pred::repair {

namespace {

std::uint64_t round_up_to(std::uint64_t v, std::uint64_t unit) {
  if (unit == 0) return v;
  return (v + unit - 1) / unit * unit;
}

const ObjectFinding* finding_for(const Report& report, Address start) {
  for (const ObjectFinding& f : report.findings) {
    if (f.object.start == start) return &f;
  }
  return nullptr;
}

/// Word evidence: in-line offsets with owner and write heat, hottest first.
std::vector<OffsetEvidence> gather_evidence(const ObjectFinding& f,
                                            const PlannerOptions& options) {
  std::vector<OffsetEvidence> ev;
  for (const LineFinding& lf : f.lines) {
    for (const WordReport& w : lf.words) {
      OffsetEvidence e;
      e.offset = static_cast<std::uint64_t>(w.address % options.line_size);
      e.owner = w.shared ? kSharedOwner : static_cast<std::uint32_t>(w.owner);
      e.writes = w.writes;
      ev.push_back(e);
    }
  }
  std::sort(ev.begin(), ev.end(),
            [](const OffsetEvidence& a, const OffsetEvidence& b) {
              return a.writes > b.writes ||
                     (a.writes == b.writes && a.offset < b.offset);
            });
  if (ev.size() > options.max_evidence) ev.resize(options.max_evidence);
  return ev;
}

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

RepairPlan compile_plan(const Report& report,
                        const std::vector<FixSuggestion>& suggestions,
                        const CallsiteTable& callsites,
                        const PlannerOptions& options) {
  RepairPlan plan;
  for (const FixSuggestion& s : suggestions) {
    // True sharing has no layout remedy; there is nothing to apply.
    if (s.kind == FixKind::kReduceWriteSharing) continue;

    PlanEntry e;
    e.is_global = s.object.is_global;
    if (e.is_global) {
      if (s.object.name.empty()) continue;
      e.site_key = s.object.name;
    } else {
      if (s.object.callsite == kNoCallsite) continue;
      e.site_key = join_frames(callsites.get(s.object.callsite).frames);
      if (e.site_key.empty()) continue;
    }

    e.slot_stride = s.slot_stride;
    e.object_size = s.object.size;
    e.expected_eliminated = s.eliminated_invalidations;
    e.alignment = options.line_size;
    switch (s.kind) {
      case FixKind::kPadPerThreadSlots:
        e.action = PlanAction::kPadSlots;
        e.pad_to = round_up_to(std::max<std::uint64_t>(s.slot_stride, 1),
                               options.line_size);
        break;
      case FixKind::kWidenElements:
        e.action = PlanAction::kPadChunks;
        e.pad_to = round_up_to(std::max<std::uint64_t>(s.slot_stride, 1),
                               options.line_size);
        break;
      case FixKind::kSeparateHotFields:
        e.action = PlanAction::kSplitFields;
        e.pad_to = options.line_size;
        break;
      case FixKind::kAlignObject:
        e.action = PlanAction::kAlignStart;
        e.pad_to = options.line_size;
        break;
      case FixKind::kReduceWriteSharing:
        continue;  // unreachable (filtered above)
    }

    if (const ObjectFinding* f = finding_for(report, s.object.start)) {
      e.evidence = gather_evidence(*f, options);
    }

    RepairPlan one;
    one.entries.push_back(std::move(e));
    merge_plans(plan, one);
  }
  return plan;
}

std::string format_plan(const RepairPlan& plan) {
  if (plan.empty()) return "repair plan: empty (nothing to apply)\n";
  std::string out;
  append_fmt(out, "repair plan: %zu entr%s (origin session %" PRIu64 ")\n",
             plan.entries.size(), plan.entries.size() == 1 ? "y" : "ies",
             plan.origin_uid);
  int rank = 1;
  for (const PlanEntry& e : plan.entries) {
    append_fmt(out, "  #%d [%s] %s '%s'\n", rank++, to_string(e.action),
               e.is_global ? "global" : "heap callsite", e.site_key.c_str());
    append_fmt(out,
               "     pad to %" PRIu64 " B, align %" PRIu64
               " B (packed stride %" PRIu64 " B, object %" PRIu64
               " B), ~%" PRIu64 " invalidations expected eliminated\n",
               e.pad_to, e.alignment, e.slot_stride, e.object_size,
               e.expected_eliminated);
    for (const OffsetEvidence& ev : e.evidence) {
      if (ev.owner == kSharedOwner) {
        append_fmt(out, "     evidence: line offset %" PRIu64
                        " shared, %" PRIu64 " write(s)\n",
                   ev.offset, ev.writes);
      } else {
        append_fmt(out, "     evidence: line offset %" PRIu64
                        " owned by T%u, %" PRIu64 " write(s)\n",
                   ev.offset, ev.owner, ev.writes);
      }
    }
  }
  return out;
}

}  // namespace pred::repair
