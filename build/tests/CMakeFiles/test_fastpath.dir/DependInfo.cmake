
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fastpath.cpp" "tests/CMakeFiles/test_fastpath.dir/test_fastpath.cpp.o" "gcc" "tests/CMakeFiles/test_fastpath.dir/test_fastpath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/predator_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_tasking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_report_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_advice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
