# Empty compiler generated dependencies file for fig5_report.
# This may be replaced when dependencies are built.
