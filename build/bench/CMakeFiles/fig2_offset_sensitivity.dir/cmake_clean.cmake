file(REMOVE_RECURSE
  "CMakeFiles/fig2_offset_sensitivity.dir/fig2_offset_sensitivity.cpp.o"
  "CMakeFiles/fig2_offset_sensitivity.dir/fig2_offset_sensitivity.cpp.o.d"
  "fig2_offset_sensitivity"
  "fig2_offset_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_offset_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
