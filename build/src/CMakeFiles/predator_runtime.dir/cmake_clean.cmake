file(REMOVE_RECURSE
  "CMakeFiles/predator_runtime.dir/runtime/callsite.cpp.o"
  "CMakeFiles/predator_runtime.dir/runtime/callsite.cpp.o.d"
  "CMakeFiles/predator_runtime.dir/runtime/report.cpp.o"
  "CMakeFiles/predator_runtime.dir/runtime/report.cpp.o.d"
  "CMakeFiles/predator_runtime.dir/runtime/runtime.cpp.o"
  "CMakeFiles/predator_runtime.dir/runtime/runtime.cpp.o.d"
  "libpredator_runtime.a"
  "libpredator_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
