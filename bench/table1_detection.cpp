// Table 1 reproduction (plus the Section 4.1.2 real-application results):
// for every workload, run detection with and without prediction, check each
// expected false sharing site, and measure the improvement from applying
// the paper's fix (modeled on the cache simulator).
//
// Also exercises the paper's "no false positives" claim (clean programs
// yield no false-sharing findings) and contrasts the SHERIFF-style and
// PTU-style baselines on the latent linear_regression bug.
#include <cstdio>

#include "baseline/ptu_like.hpp"
#include "baseline/sheriff_like.hpp"
#include "bench_util.hpp"

using namespace pred;
using namespace pred::bench;

namespace {

struct SiteVerdict {
  bool with_prediction = false;
  bool without_prediction = false;
  double measured_improvement = 0.0;
};

/// Detection verdict for one workload: replay under full PREDATOR and under
/// PREDATOR-NP, then match each expected site.
std::vector<SiteVerdict> evaluate(const wl::Workload& w,
                                  const wl::Params& base_params) {
  std::vector<SiteVerdict> verdicts(w.traits().sites.size());

  for (const bool prediction : {true, false}) {
    SessionOptions opts = session_options();
    opts.runtime.prediction_enabled = prediction;
    Session session(opts);
    w.run_replay(session, base_params);
    const Report rep = session.report();
    for (std::size_t i = 0; i < w.traits().sites.size(); ++i) {
      const bool found = wl::report_mentions_site(
          rep, session.runtime().callsites(), w.traits().sites[i].where);
      if (prediction) {
        verdicts[i].with_prediction = found;
      } else {
        verdicts[i].without_prediction = found;
      }
    }
  }

  // Improvement per site: fix exactly that site, compare modeled runtimes.
  const double buggy = modeled_seconds(w, base_params);
  for (std::size_t i = 0; i < w.traits().sites.size(); ++i) {
    wl::Params fixed = base_params;
    fixed.fix_mask = 1u << i;
    verdicts[i].measured_improvement =
        improvement_pct(buggy, modeled_seconds(w, fixed));
  }
  return verdicts;
}

const char* mark(bool b) { return b ? "yes" : "-"; }

}  // namespace

int main() {
  std::printf("Table 1: false sharing detection across the benchmark "
              "suites and real applications\n\n");
  std::printf("%-18s %-44s %-4s %-9s %-9s %12s %12s\n", "benchmark",
              "source code (site)", "new", "w/o pred", "w/ pred",
              "paper impr", "measured");
  print_rule('-', 112);

  std::size_t false_positives = 0;
  std::vector<std::string> clean;

  for (const auto& w : wl::all_workloads()) {
    wl::Params p = default_params();
    // The paper's linear_regression numbers describe the bug *when it
    // manifests*; measure the fix's effect at a hostile placement (its
    // detection columns still come from the clean, aligned run).
    const bool is_lreg = w->traits().name == "linear_regression";

    if (w->traits().sites.empty()) {
      SessionOptions opts = session_options();
      Session session(opts);
      w->run_replay(session, p);
      const std::size_t findings =
          wl::false_sharing_findings(session.report());
      false_positives += findings;
      clean.push_back(w->traits().name +
                      (findings == 0 ? "" : " [UNEXPECTED FINDINGS]"));
      continue;
    }

    const auto verdicts = evaluate(*w, p);
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      const wl::Site& site = w->traits().sites[i];
      double measured = verdicts[i].measured_improvement;
      if (is_lreg) {
        wl::Params hostile = p;
        hostile.offset = 24;
        const double buggy = modeled_seconds(*w, hostile);
        wl::Params fixed = hostile;
        fixed.fix_mask = 1u << i;
        measured = improvement_pct(buggy, modeled_seconds(*w, fixed));
      }
      std::printf("%-18s %-44s %-4s %-9s %-9s %11.2f%% %11.2f%%\n",
                  i == 0 ? w->traits().name.c_str() : "",
                  site.where.c_str(), mark(site.newly_discovered),
                  mark(verdicts[i].without_prediction),
                  mark(verdicts[i].with_prediction),
                  site.paper_improvement_pct, measured);
    }
  }
  print_rule('-', 112);

  std::printf("\nClean programs (paper + Section 4.1.2: no severe false "
              "sharing, no false positives):\n  ");
  for (const auto& name : clean) std::printf("%s  ", name.c_str());
  std::printf("\n  false-sharing findings across all clean programs: %zu\n",
              false_positives);

  // --- baseline contrast on the latent bug --------------------------------
  std::printf("\nBaseline comparison on linear_regression at the clean "
              "placement (offset 0):\n");
  {
    Session session(session_options());
    const wl::Workload* lreg = wl::find_workload("linear_regression");
    const auto traces = lreg->capture(session, default_params());

    SheriffLikeDetector sheriff;
    PtuLikeDetector ptu;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      for (const auto& ev : traces[t]) {
        sheriff.on_access(ev.addr, ev.type, static_cast<ThreadId>(t));
        ptu.on_access(ev.addr, ev.type, static_cast<ThreadId>(t));
      }
    }
    std::size_t sheriff_fs = 0;
    for (const auto& line : sheriff.report(100)) {
      sheriff_fs += line.write_write_false_sharing;
    }
    std::size_t ptu_flagged = 0;
    for (const auto& line : ptu.report(1000)) ptu_flagged += line.flagged;

    wl::replay_into_session(session, traces);
    bool only_predicted = false;
    const bool predator_found = wl::report_mentions_site(
        session.report(), session.runtime().callsites(),
        lreg->traits().sites[0].where, &only_predicted);

    std::printf("  SHERIFF-style (observed, write-write): %zu findings\n",
                sheriff_fs);
    std::printf("  PTU-style (aggregate) flagged lines:   %zu%s\n",
                ptu_flagged,
                ptu_flagged ? "  <- cannot separate true sharing" : "");
    std::printf("  PREDATOR: %s%s\n",
                predator_found ? "found" : "missed",
                only_predicted ? " (via prediction, zero observed "
                                 "invalidations)"
                               : "");
  }
  return 0;
}
