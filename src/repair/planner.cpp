#include "repair/planner.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace pred::repair {

namespace {

std::uint64_t round_up_to(std::uint64_t v, std::uint64_t unit) {
  if (unit == 0) return v;
  return (v + unit - 1) / unit * unit;
}

const ObjectFinding* finding_for(const Report& report, Address start) {
  for (const ObjectFinding& f : report.findings) {
    if (f.object.start == start) return &f;
  }
  return nullptr;
}

/// Word evidence: in-line offsets with owner and write heat, hottest first.
std::vector<OffsetEvidence> gather_evidence(const ObjectFinding& f,
                                            const PlannerOptions& options) {
  std::vector<OffsetEvidence> ev;
  for (const LineFinding& lf : f.lines) {
    for (const WordReport& w : lf.words) {
      OffsetEvidence e;
      e.offset = static_cast<std::uint64_t>(w.address % options.line_size);
      e.owner = w.shared ? kSharedOwner : static_cast<std::uint32_t>(w.owner);
      e.writes = w.writes;
      ev.push_back(e);
    }
  }
  std::sort(ev.begin(), ev.end(),
            [](const OffsetEvidence& a, const OffsetEvidence& b) {
              return a.writes > b.writes ||
                     (a.writes == b.writes && a.offset < b.offset);
            });
  if (ev.size() > options.max_evidence) ev.resize(options.max_evidence);
  return ev;
}

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

RepairPlan compile_plan(const Report& report,
                        const std::vector<FixSuggestion>& suggestions,
                        const CallsiteTable& callsites,
                        const PlannerOptions& options) {
  RepairPlan plan;
  for (const FixSuggestion& s : suggestions) {
    // True sharing has no layout remedy; there is nothing to apply.
    if (s.kind == FixKind::kReduceWriteSharing) continue;

    PlanEntry e;
    e.is_global = s.object.is_global;
    if (e.is_global) {
      if (s.object.name.empty()) continue;
      e.site_key = s.object.name;
    } else {
      if (s.object.callsite == kNoCallsite) continue;
      e.site_key = join_frames(callsites.get(s.object.callsite).frames);
      if (e.site_key.empty()) continue;
    }

    e.slot_stride = s.slot_stride;
    e.object_size = s.object.size;
    e.expected_eliminated = s.eliminated_invalidations;
    e.alignment = options.line_size;
    switch (s.kind) {
      case FixKind::kPadPerThreadSlots:
        e.action = PlanAction::kPadSlots;
        e.pad_to = round_up_to(std::max<std::uint64_t>(s.slot_stride, 1),
                               options.line_size);
        break;
      case FixKind::kWidenElements:
        e.action = PlanAction::kPadChunks;
        e.pad_to = round_up_to(std::max<std::uint64_t>(s.slot_stride, 1),
                               options.line_size);
        break;
      case FixKind::kSeparateHotFields:
        e.action = PlanAction::kSplitFields;
        e.pad_to = options.line_size;
        break;
      case FixKind::kAlignObject:
        e.action = PlanAction::kAlignStart;
        e.pad_to = options.line_size;
        break;
      case FixKind::kReduceWriteSharing:
        continue;  // unreachable (filtered above)
    }

    if (const ObjectFinding* f = finding_for(report, s.object.start)) {
      e.evidence = gather_evidence(*f, options);
    }

    RepairPlan one;
    one.entries.push_back(std::move(e));
    merge_plans(plan, one);
  }
  return plan;
}

RepairPlan compile_plan(const ir::StaticFsReport& report,
                        const std::vector<StaticRegion>& regions,
                        const PlannerOptions& options) {
  RepairPlan plan;
  for (std::size_t g = 0; g < regions.size(); ++g) {
    if (regions[g].name.empty()) continue;

    // Non-latent false-sharing lines of this region at the base geometry,
    // already score-descending (report order).
    std::vector<const ir::PredictedLine*> lines;
    for (const ir::PredictedLine& l : report.lines) {
      if (l.region == g && !l.latent &&
          l.line_size == options.line_size && l.false_sharing) {
        lines.push_back(&l);
      }
    }
    if (lines.empty()) continue;  // true sharing only: no layout remedy

    PlanEntry e;
    e.is_global = regions[g].is_global;
    e.site_key = regions[g].name;
    e.slot_stride =
        g < report.region_slot_stride.size() ? report.region_slot_stride[g]
                                             : 0;
    e.object_size =
        g < report.region_extent.size() ? report.region_extent[g] : 0;
    e.alignment = options.line_size;
    if (e.slot_stride > 0) {
      e.action = PlanAction::kPadSlots;
      e.pad_to = round_up_to(e.slot_stride, options.line_size);
    } else {
      e.action = PlanAction::kAlignStart;
      e.pad_to = options.line_size;
    }
    for (const ir::PredictedLine* l : lines) {
      e.expected_eliminated += l->ww_weight + l->wr_weight;
      for (const ir::RoleSpan& s : l->spans) {
        OffsetEvidence ev;
        ev.offset = s.lo;  // span bounds are already line-relative
        ev.owner = s.role;
        ev.writes = s.write_weight;
        e.evidence.push_back(ev);
      }
    }
    std::sort(e.evidence.begin(), e.evidence.end(),
              [](const OffsetEvidence& a, const OffsetEvidence& b) {
                return a.writes > b.writes ||
                       (a.writes == b.writes && a.offset < b.offset);
              });
    if (e.evidence.size() > options.max_evidence) {
      e.evidence.resize(options.max_evidence);
    }

    RepairPlan one;
    one.entries.push_back(std::move(e));
    merge_plans(plan, one);
  }
  return plan;
}

std::string format_plan(const RepairPlan& plan) {
  if (plan.empty()) return "repair plan: empty (nothing to apply)\n";
  std::string out;
  append_fmt(out, "repair plan: %zu entr%s (origin session %" PRIu64 ")\n",
             plan.entries.size(), plan.entries.size() == 1 ? "y" : "ies",
             plan.origin_uid);
  int rank = 1;
  for (const PlanEntry& e : plan.entries) {
    append_fmt(out, "  #%d [%s] %s '%s'\n", rank++, to_string(e.action),
               e.is_global ? "global" : "heap callsite", e.site_key.c_str());
    append_fmt(out,
               "     pad to %" PRIu64 " B, align %" PRIu64
               " B (packed stride %" PRIu64 " B, object %" PRIu64
               " B), ~%" PRIu64 " invalidations expected eliminated\n",
               e.pad_to, e.alignment, e.slot_stride, e.object_size,
               e.expected_eliminated);
    for (const OffsetEvidence& ev : e.evidence) {
      if (ev.owner == kSharedOwner) {
        append_fmt(out, "     evidence: line offset %" PRIu64
                        " shared, %" PRIu64 " write(s)\n",
                   ev.offset, ev.writes);
      } else {
        append_fmt(out, "     evidence: line offset %" PRIu64
                        " owned by T%u, %" PRIu64 " write(s)\n",
                   ev.offset, ev.owner, ev.writes);
      }
    }
  }
  return out;
}

}  // namespace pred::repair
