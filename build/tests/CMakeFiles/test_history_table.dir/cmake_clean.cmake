file(REMOVE_RECURSE
  "CMakeFiles/test_history_table.dir/test_history_table.cpp.o"
  "CMakeFiles/test_history_table.dir/test_history_table.cpp.o.d"
  "test_history_table"
  "test_history_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_history_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
