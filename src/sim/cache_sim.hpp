// Multi-core coherence simulator: the hardware substrate substituting for
// the paper's 8-core Xeon (see DESIGN.md). It models per-core private caches
// with MESI-style line states — enough to count the cache invalidations and
// coherence misses that false sharing produces — plus a simple cycle cost
// model calibrated so the paper's *shapes* (Figure 2's offset-sensitivity
// curve, Table 1's improvement factors) reproduce.
//
// Capacity and conflict misses are deliberately not modeled: false sharing
// cost is coherence cost, and an infinite-capacity private cache isolates
// exactly that signal.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/cacheline.hpp"
#include "common/check.hpp"

namespace pred {

struct SimConfig {
  std::uint32_t num_cores = 8;  ///< the paper's machine: 2x4-core Xeon
  std::size_t line_size = 64;
  double clock_ghz = 2.33;

  // Cycle costs, calibrated to the paper's dual-socket Core 2 Xeon: L1 hit
  // ~1-3cy, clean L2 fetch tens of cycles, memory ~250cy, and dirty-line
  // ownership transfers (which cross the front-side bus on that machine)
  // the most expensive event of all.
  std::uint64_t hit_cost = 1;
  std::uint64_t shared_fetch_cost = 80;    ///< clean copy from L2/another core
  std::uint64_t cold_miss_cost = 250;       ///< memory fetch
  std::uint64_t coherence_miss_cost = 500;  ///< dirty line owned elsewhere
  std::uint64_t invalidation_cost = 100;    ///< write hitting remote copies
};

struct SimStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t cold_misses = 0;
  std::uint64_t shared_fetches = 0;
  std::uint64_t coherence_misses = 0;   ///< reads/writes of remotely-dirty lines
  std::uint64_t invalidations_sent = 0; ///< remote copies killed by writes
  std::uint64_t total_cycles = 0;       ///< sum over cores

  void add(const SimStats& o) {
    accesses += o.accesses;
    hits += o.hits;
    cold_misses += o.cold_misses;
    shared_fetches += o.shared_fetches;
    coherence_misses += o.coherence_misses;
    invalidations_sent += o.invalidations_sent;
    total_cycles += o.total_cycles;
  }
};

class CacheSim {
 public:
  using Stats = SimStats;

  explicit CacheSim(SimConfig config = {}) : config_(config) {
    PRED_CHECK(config.num_cores >= 1 && config.num_cores <= 64);
    core_cycles_.assign(config.num_cores, 0);
  }

  /// Applies one access by `core`; accrues cycles to that core and returns
  /// the access's cost (used by the event-driven executor).
  std::uint64_t on_access(std::uint32_t core, Address addr, AccessType type);

  const SimStats& stats() const { return stats_; }
  const SimConfig& config() const { return config_; }
  std::uint32_t num_cores() const { return config_.num_cores; }

  /// Cycle count of the busiest core: the parallel-execution critical path.
  std::uint64_t max_core_cycles() const {
    std::uint64_t m = 0;
    for (auto c : core_cycles_) m = std::max(m, c);
    return m;
  }
  std::uint64_t core_cycles(std::uint32_t core) const {
    return core_cycles_[core];
  }

  /// Modeled wall-clock seconds of the parallel phase.
  double modeled_seconds() const {
    return static_cast<double>(max_core_cycles()) /
           (config_.clock_ghz * 1e9);
  }

  /// Invalidations sent for the line containing `addr` (0 if never seen).
  /// The repair verifier uses these per-line counts to prove that applying
  /// a plan actually removed the coherence traffic on the detected lines.
  std::uint64_t line_invalidations(Address addr) const;

  /// Sum of per-line invalidations over every line overlapping
  /// [start, start + size).
  std::uint64_t invalidations_in(Address start, std::size_t size) const;

  void reset() {
    lines_.clear();
    stats_ = SimStats{};
    core_cycles_.assign(config_.num_cores, 0);
  }

 private:
  struct LineState {
    std::uint64_t sharers = 0;  ///< bitmask of cores with a clean copy
    std::int32_t owner = -1;    ///< core holding the line Modified, or -1
    bool touched = false;       ///< line ever fetched (cold-miss detection)
    std::uint64_t invalidations = 0;  ///< remote copies killed on this line
  };

  SimConfig config_;
  std::unordered_map<std::size_t, LineState> lines_;
  SimStats stats_;
  std::vector<std::uint64_t> core_cycles_;
};

}  // namespace pred
