file(REMOVE_RECURSE
  "CMakeFiles/predator_sim.dir/sim/cache_sim.cpp.o"
  "CMakeFiles/predator_sim.dir/sim/cache_sim.cpp.o.d"
  "CMakeFiles/predator_sim.dir/sim/executor.cpp.o"
  "CMakeFiles/predator_sim.dir/sim/executor.cpp.o.d"
  "libpredator_sim.a"
  "libpredator_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
