// Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm
// ("A Simple, Fast Dominance Algorithm"): RPO numbering plus repeated
// two-finger intersection. O(blocks²) worst case but effectively linear on
// the reducible CFGs the mini-IR produces, with none of Lengauer–Tarjan's
// bookkeeping.
//
// Dominance is what lets the pruning passes reason across blocks: a fact
// established at a dominating instruction holds at every instruction it
// dominates, and back-edges (the anchor of natural loops, loops.hpp) are
// exactly the edges whose target dominates their source.
#pragma once

#include <cstdint>
#include <vector>

#include "instrument/analysis/cfg.hpp"

namespace pred::ir {

class DomTree {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  explicit DomTree(const Cfg& cfg);

  /// Immediate dominator of `b`; the entry's idom is itself, unreachable
  /// blocks have kNone.
  std::uint32_t idom(std::uint32_t b) const { return idom_[b]; }

  /// Reflexive dominance: every block dominates itself. Unreachable blocks
  /// dominate nothing and are dominated by nothing.
  bool dominates(std::uint32_t a, std::uint32_t b) const;

  /// Depth of `b` in the dominator tree (entry = 0), or kNone if
  /// unreachable.
  std::uint32_t depth(std::uint32_t b) const { return depth_[b]; }

  std::size_t tree_height() const { return height_; }

 private:
  std::vector<std::uint32_t> idom_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> rpo_index_;  // position in RPO, for intersect
  std::size_t height_ = 0;
};

}  // namespace pred::ir
