# Empty compiler generated dependencies file for fix_advisor_demo.
# This may be replaced when dependencies are built.
