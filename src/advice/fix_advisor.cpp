#include "advice/fix_advisor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

namespace pred {

const char* to_string(FixKind kind) {
  switch (kind) {
    case FixKind::kPadPerThreadSlots: return "pad per-thread slots";
    case FixKind::kAlignObject: return "pin object alignment";
    case FixKind::kWidenElements: return "widen array elements";
    case FixKind::kSeparateHotFields: return "separate hot fields";
    case FixKind::kReduceWriteSharing: return "reduce write sharing";
  }
  return "?";
}

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

/// A maximal run of consecutive touched words owned by one thread.
struct OwnerSegment {
  ThreadId owner = kInvalidThread;
  Address start = 0;
  Address end = 0;  // exclusive
};

/// Collects every touched word of a finding, address-sorted.
std::vector<WordReport> all_words(const ObjectFinding& f) {
  std::vector<WordReport> words;
  for (const LineFinding& lf : f.lines) {
    words.insert(words.end(), lf.words.begin(), lf.words.end());
  }
  std::sort(words.begin(), words.end(),
            [](const WordReport& a, const WordReport& b) {
              return a.address < b.address;
            });
  return words;
}

std::vector<OwnerSegment> owner_segments(const std::vector<WordReport>& words,
                                         std::size_t word_size) {
  std::vector<OwnerSegment> segments;
  for (const WordReport& w : words) {
    if (w.shared || w.owner == kInvalidThread) continue;
    if (!segments.empty() && segments.back().owner == w.owner &&
        segments.back().end == w.address) {
      segments.back().end = w.address + word_size;
    } else {
      segments.push_back({w.owner, w.address, w.address + word_size});
    }
  }
  return segments;
}

/// Median gap between starts of consecutive different-owner segments —
/// the inferred per-thread slot stride.
std::size_t infer_stride(const std::vector<OwnerSegment>& segments) {
  std::vector<std::size_t> gaps;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (segments[i].owner != segments[i - 1].owner) {
      gaps.push_back(segments[i].start - segments[i - 1].start);
    }
  }
  if (gaps.empty()) return 0;
  std::sort(gaps.begin(), gaps.end());
  return gaps[gaps.size() / 2];
}

std::uint32_t distinct_owners(const std::vector<OwnerSegment>& segments) {
  std::set<ThreadId> owners;
  for (const auto& s : segments) owners.insert(s.owner);
  return static_cast<std::uint32_t>(owners.size());
}

FixSuggestion advise_one(const ObjectFinding& f,
                         const AdvisorOptions& options) {
  FixSuggestion fix;
  fix.object = f.object;
  fix.eliminated_invalidations = f.impact();

  const auto words = all_words(f);
  const std::size_t word_size = words.size() >= 2
                                    ? static_cast<std::size_t>(
                                          words[1].address - words[0].address)
                                    : 8;
  const auto segments =
      owner_segments(words, std::min<std::size_t>(word_size, 8));
  fix.threads_involved = distinct_owners(segments);
  const std::size_t stride = infer_stride(segments);
  fix.slot_stride = stride;

  if (f.kind == SharingKind::kTrueSharing) {
    fix.kind = FixKind::kReduceWriteSharing;
    fix.prescription =
        "this is true sharing (one word written by several threads): no "
        "layout change helps — shard the counter per thread or batch "
        "updates locally";
    fix.rationale = "a shared hot word carries the invalidations";
    return fix;
  }

  if (!f.observed && f.predicted) {
    fix.kind = FixKind::kAlignObject;
    append_fmt(fix.prescription,
               "the current placement is safe only by accident: allocate "
               "with alignas(%zu) (or aligned_alloc) and pad the per-thread "
               "stride to a multiple of %zu bytes so no placement or larger "
               "cache line can recombine the hot words",
               options.line_size, options.line_size);
    fix.rationale =
        "false sharing was *predicted* from hot words of different threads "
        "on adjacent lines; only the object's starting address prevents it "
        "today";
    return fix;
  }

  // Packed-slot pattern only applies when the object is small enough that
  // the slots genuinely tile it; a large array whose *hot* words cluster at
  // chunk boundaries merely looks slot-shaped in the hot lines.
  const bool slots_tile_object =
      f.object.size <=
      static_cast<std::size_t>(fix.threads_involved) * options.line_size * 2;

  if (stride != 0 && stride < options.line_size &&
      fix.threads_involved >= 2 && slots_tile_object) {
    fix.kind = FixKind::kPadPerThreadSlots;
    append_fmt(fix.prescription,
               "each thread's %zu-byte slot shares a %zu-byte line with its "
               "neighbors: pad every slot to %zu bytes (alignas(%zu) or an "
               "explicit char[%zu] tail)",
               stride, options.line_size, options.line_size,
               options.line_size, options.line_size - stride);
    append_fmt(fix.rationale,
               "%u threads own interleaved word runs with a ~%zu-byte "
               "stride inside shared lines",
               fix.threads_involved, stride);
    return fix;
  }

  if ((stride >= options.line_size || !slots_tile_object) &&
      fix.threads_involved >= 2) {
    const std::size_t chunk =
        stride >= options.line_size
            ? stride
            : f.object.size / std::max<std::uint32_t>(fix.threads_involved, 1);
    fix.kind = FixKind::kWidenElements;
    fix.slot_stride = chunk;
    append_fmt(fix.prescription,
               "threads own large contiguous chunks (~%zu bytes) that meet "
               "inside boundary lines: widen the element type or round each "
               "chunk to a multiple of %zu bytes",
               chunk, options.line_size);
    fix.rationale =
        "only the lines where two threads' chunks abut show mixed "
        "ownership";
    return fix;
  }

  fix.kind = FixKind::kSeparateHotFields;
  append_fmt(fix.prescription,
             "fields written by different threads share lines without a "
             "regular stride: group fields by owning thread and insert "
             "alignas(%zu) between the groups",
             options.line_size);
  fix.rationale = "irregular multi-owner word mix inside the hot lines";
  return fix;
}

}  // namespace

std::vector<FixSuggestion> advise(const Report& report,
                                  const AdvisorOptions& options) {
  std::vector<FixSuggestion> out;
  for (const ObjectFinding& f : report.findings) {
    if (f.impact() < options.min_invalidations) continue;
    if (f.kind == SharingKind::kNone && !f.predicted) continue;
    out.push_back(advise_one(f, options));
  }
  std::sort(out.begin(), out.end(),
            [](const FixSuggestion& a, const FixSuggestion& b) {
              return a.eliminated_invalidations > b.eliminated_invalidations;
            });
  return out;
}

std::string format_suggestions(
    const std::vector<FixSuggestion>& suggestions) {
  if (suggestions.empty()) return "No fixes to suggest.\n";
  std::string out;
  int rank = 1;
  for (const FixSuggestion& s : suggestions) {
    append_fmt(out, "Fix #%d [%s] — eliminates ~%" PRIu64 " invalidations\n",
               rank++, to_string(s.kind), s.eliminated_invalidations);
    if (s.object.is_global && !s.object.name.empty()) {
      append_fmt(out, "  object: global '%s' (%zu bytes)\n",
                 s.object.name.c_str(), s.object.size);
    } else {
      append_fmt(out, "  object: heap, start 0x%" PRIxPTR " (%zu bytes)\n",
                 s.object.start, s.object.size);
    }
    append_fmt(out, "  evidence: %s\n", s.rationale.c_str());
    append_fmt(out, "  fix: %s\n\n", s.prescription.c_str());
  }
  return out;
}

}  // namespace pred
