#include "collect/collector.hpp"

#include <functional>
#include <thread>

#include "common/cacheline.hpp"
#include "repair/plan_codec.hpp"
#include "trace/snapshot_codec.hpp"
#include "trace/wire_format.hpp"

namespace pred {

namespace {

/// splitmix64 finalizer: line starts are multiples of the line size, so a
/// modulo shard pick without mixing would land everything in a few shards.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t default_shards() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : (hw > 64 ? 64 : hw);
}

}  // namespace

/// One ingest shard: a mutex and its fragment of the fleet maps. Padded so
/// concurrently-locked shards never share a host cache line — the collector
/// should not itself false-share.
struct Collector::Shard {
  alignas(kCacheLineSize) mutable std::mutex mu;
  std::map<std::uint64_t, ClientRec> clients;
  std::map<std::pair<std::uint64_t, Address>, LineRec> lines;
  std::map<std::pair<std::uint64_t, std::string>, SiteRec> sites;
};

Collector::Collector(CollectorConfig config) : config_(config) {
  std::size_t n = config_.shards == 0 ? default_shards() : config_.shards;
  if (n > 64) n = 64;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Collector::~Collector() = default;

std::size_t Collector::shard_of_uid(std::uint64_t uid) const {
  return mix64(uid) % shards_.size();
}

std::size_t Collector::shard_of_line(Address line) const {
  return mix64(static_cast<std::uint64_t>(line)) % shards_.size();
}

std::size_t Collector::shard_of_site(const std::string& key) const {
  return mix64(std::hash<std::string>{}(key)) % shards_.size();
}

bool Collector::ingest_frame(std::string_view frame_bytes) {
  wire::Frame frame;
  std::size_t consumed = 0;
  const wire::FrameError err =
      wire::parse_frame(frame_bytes, &frame, &consumed);
  if (err != wire::FrameError::kOk) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.frames_rejected;
    return false;
  }
  return ingest_frame(frame);
}

bool Collector::ingest_frame(const wire::Frame& frame) {
  switch (frame.type) {
    case wire::FrameType::kSnapshot: {
      DecodedSnapshot decoded;
      if (!SnapshotCodec::decode(frame.payload, &decoded)) break;
      ingest(decoded.client.uid, decoded.client.pid, decoded.snapshot);
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.frames_ingested;
      ++stats_.snapshots_ingested;
      return true;
    }
    case wire::FrameType::kHello: {
      ClientId client;
      if (!SnapshotCodec::decode_client(frame.payload, &client)) break;
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.frames_ingested;
      ++stats_.hellos;
      return true;
    }
    case wire::FrameType::kGoodbye: {
      ClientId client;
      if (!SnapshotCodec::decode_client(frame.payload, &client)) break;
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.frames_ingested;
      ++stats_.goodbyes;
      return true;
    }
    case wire::FrameType::kRepairPlan: {
      repair::RepairPlan plan;
      if (!repair::decode_plan_payload(frame.payload, &plan)) break;
      {
        std::lock_guard<std::mutex> lk(plan_mu_);
        repair::merge_plans(merged_plan_, plan);
      }
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.frames_ingested;
      ++stats_.plans_ingested;
      return true;
    }
    default:
      break;  // trace frames etc. have no business on a snapshot transport
  }
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++stats_.frames_rejected;
  return false;
}

void Collector::ingest(std::uint64_t client_uid, std::uint64_t client_pid,
                       const MonitorSnapshot& snap) {
  const SnapshotRecords records = decompose(client_uid, client_pid, snap);

  // Route each record to its shard and join it under that shard's lock —
  // the identical newest-wins rule FleetState::absorb applies, just
  // partitioned by key hash. Locks are taken one shard at a time, never
  // nested, so concurrent ingests only contend when their keys collide.
  {
    Shard& s = *shards_[shard_of_uid(client_uid)];
    std::lock_guard<std::mutex> lk(s.mu);
    auto [it, inserted] = s.clients.try_emplace(client_uid, records.client);
    if (!inserted &&
        compare_snapshots(records.client.latest, it->second.latest) > 0) {
      it->second = records.client;
    }
  }
  for (const auto& [line, rec] : records.lines) {
    Shard& s = *shards_[shard_of_line(line)];
    std::lock_guard<std::mutex> lk(s.mu);
    auto [it, inserted] = s.lines.try_emplace({client_uid, line}, rec);
    if (!inserted && compare_line_recs(rec, it->second) > 0) {
      it->second = rec;
    }
  }
  for (const auto& [key, rec] : records.sites) {
    Shard& s = *shards_[shard_of_site(key)];
    std::lock_guard<std::mutex> lk(s.mu);
    auto [it, inserted] = s.sites.try_emplace({client_uid, key}, rec);
    if (!inserted && compare_site_recs(rec, it->second) > 0) {
      it->second = rec;
    }
  }
}

FleetState Collector::state() const {
  // Fold the shard fragments. Each fragment covers a disjoint key set, so
  // this is a disjoint union — still phrased as a join for uniformity.
  FleetState folded;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    FleetState fragment;
    for (const auto& [uid, rec] : shard->clients) {
      fragment.clients_[uid] = rec;
    }
    for (const auto& [key, rec] : shard->lines) fragment.lines_[key] = rec;
    for (const auto& [key, rec] : shard->sites) fragment.sites_[key] = rec;
    folded.merge(fragment);
  }
  return folded;
}

FleetRollup Collector::rollup() const {
  return state().rollup(config_.top_k);
}

repair::RepairPlan Collector::merged_plan() const {
  std::lock_guard<std::mutex> lk(plan_mu_);
  return merged_plan_;
}

Collector::Stats Collector::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

}  // namespace pred
