# Empty compiler generated dependencies file for ablation_batched_calls.
# This may be replaced when dependencies are built.
