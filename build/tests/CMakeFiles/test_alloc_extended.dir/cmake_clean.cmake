file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_extended.dir/test_alloc_extended.cpp.o"
  "CMakeFiles/test_alloc_extended.dir/test_alloc_extended.cpp.o.d"
  "test_alloc_extended"
  "test_alloc_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
