// Detailed per-cache-line tracking, allocated lazily once a line's write
// count crosses TrackingThreshold (Section 2.4.1). Stores the two-entry
// history table, the invalidation counter, the per-word access histogram,
// and the per-line sampling state of Section 2.4.3.
//
// Tracked-path concurrency (see docs/architecture.md, "Tracked path
// concurrency"): the tracker runs precisely on the hottest, most
// falsely-shared lines, so in the default lock-free mode
// (RuntimeConfig::lock_free_tracker) one sampled access performs
//   - a division-free sampling decision on the calling OS thread's own
//     *stripe* — a host-line-padded block the thread owns exclusively, so
//     the clock tick and the sampled/invalidation counters are plain
//     relaxed load/store pairs (no lock-prefixed RMW, no shared line),
//   - one relaxed fetch_add on the word histogram (the only state genuinely
//     shared between threads that touch the same word) plus a monotone CAS
//     on the word's owner slot, and
//   - one CAS on the packed 64-bit history table, whose winner reports the
//     invalidation —
// and never takes a lock. The spinlock implementation is the pre-PR3 seed
// path kept verbatim (global fetch_add access counter, `n % interval`
// sampling modulo, one per-line spinlock around every sampled update) and
// remains selectable (lock_free = false) as the ablation baseline for
// bench/microbench_tracked and as the single-threaded determinism
// reference; both modes produce bit-identical counts on any
// single-OS-thread workload.
//
// Layout: the class is alignas(kCacheLineSize) and sized to a whole number
// of host lines (static_asserts below), so adjacent trackers — and the
// ShadowSpace arena slots that own them — never falsely share with each
// other; each per-thread sampling stripe is likewise padded to one host
// line.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/cacheline.hpp"
#include "common/check.hpp"
#include "common/spinlock.hpp"
#include "runtime/config.hpp"
#include "runtime/history_table.hpp"
#include "runtime/virtual_line.hpp"
#include "runtime/word_access.hpp"

namespace pred {

namespace detail {
/// Small dense token identifying the calling OS thread, used to index its
/// private sampling stripe. Tokens are handed out on first use in thread
/// creation order and never reused, so a stripe has exactly one writer for
/// its whole life; deterministic single-OS-thread tests always use one
/// stripe and replays behave exactly like the global-counter seed.
inline std::atomic<std::uint32_t> next_stripe_token{0};
inline std::uint32_t stripe_token() {
  constexpr std::uint32_t kUnassigned = 0xffffffffu;
  // Constant-initialized, so the hot path is a TLS load + compare with no
  // thread_local initialization guard.
  thread_local std::uint32_t token = kUnassigned;
  if (token == kUnassigned) [[unlikely]] {
    token = next_stripe_token.fetch_add(1, std::memory_order_relaxed);
    PRED_CHECK(token != kUnassigned);
  }
  return token;
}
}  // namespace detail

/// Division-free sampling clock: decides "is access number n inside the
/// first `window` of its `interval`?" by maintaining the base of the
/// current interval incrementally instead of the seed's `n % interval`
/// (the interval need not be a power of two, so the modulo was a hardware
/// divide on every tracked access).
///
/// Owner-exclusive: tick() is only ever called by the one OS thread that
/// owns the enclosing stripe, so both fields advance with relaxed
/// load/store pairs — no RMW. The fields stay atomic because *readers*
/// (accessors, reports, reset_for_reuse) are cross-thread; a reset racing
/// the owner is detected by the resync branch below, which starts a fresh
/// interval instead of derailing the clock.
struct SampleClock {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> interval_begin{0};

  bool tick(std::uint64_t window, std::uint64_t interval) {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    count.store(n + 1, std::memory_order_relaxed);
    std::uint64_t begin = interval_begin.load(std::memory_order_relaxed);
    std::uint64_t off = n - begin;
    if (off >= interval) [[unlikely]] {
      // Ticks arrive one by one, so the owner only ever lands exactly on
      // the interval boundary; any other offset (including the wrapped
      // `begin > n` case) means a concurrent reset — resync to n.
      begin = off == interval ? begin + interval : n;
      off = n - begin;
      interval_begin.store(begin, std::memory_order_relaxed);
    }
    return off < window;
  }

  void reset() {
    count.store(0, std::memory_order_relaxed);
    interval_begin.store(0, std::memory_order_relaxed);
  }
};

class alignas(kCacheLineSize) CacheTracker {
 public:
  /// Upper bound on words per line we support inline (covers line sizes up to
  /// 256 bytes at 8-byte words without a secondary allocation).
  static constexpr std::size_t kMaxWords = 32;

  /// `lock_free` selects the per-thread-stripe tracked path (default;
  /// matches RuntimeConfig::lock_free_tracker) versus the seed's
  /// per-line-spinlock reference. `armed` gates the sampling clock: the
  /// runtime creates trackers disarmed and arms them once escalation
  /// bookkeeping completes, so accesses racing an in-flight escalation no
  /// longer consume sampling window positions (they count toward totals
  /// only). Standalone trackers default to armed.
  CacheTracker(std::size_t line_index, const LineGeometry& geometry,
               bool lock_free = true, bool armed = true)
      : armed_(armed), line_index_(line_index), geometry_(geometry),
        lock_free_(lock_free) {
    PRED_CHECK(geometry.words_per_line() <= kMaxWords);
  }

  /// What one tracked access did: whether it fell inside the sampling
  /// window (and was recorded in detail), and whether it registered as a
  /// cache invalidation. The runtime uses `sampled` to decide virtual-line
  /// fan-out and both fields to feed the live monitor's event stream.
  struct AccessOutcome {
    bool sampled = false;
    bool invalidated = false;
    /// Retired on the sync-aware fast state: the owner word matched
    /// (same thread, same epoch since its last sync event), so the access
    /// skipped the sampling clock and the history table entirely. Counted
    /// toward totals via the owner stripe's suppressed counters.
    bool suppressed = false;
  };

  /// Records one access that already passed the runtime's fast path.
  AccessOutcome handle_access(Address addr, AccessType type, ThreadId tid,
                              std::uint64_t sample_window,
                              std::uint64_t sample_interval) {
    if (!armed_.load(std::memory_order_acquire)) [[unlikely]] {
      // The line is still being escalated: count, but keep the sampling
      // phase untouched (the pre-PR3 behavior burned window positions on
      // accesses that arrived mid-escalation).
      unarmed_accesses_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    if (lock_free_) [[likely]] {
      return handle_access_lock_free(addr, type, tid, sample_window,
                                     sample_interval);
    }
    return handle_access_spinlock(addr, type, tid, sample_window,
                                  sample_interval);
  }

  /// Sync-aware variant (RuntimeConfig::sync_suppression): consults the
  /// packed ownership word first. A fast hit needs three loads and no RMW:
  /// the ownership word must name (tid, tid's current epoch) — i.e. this
  /// thread claimed the line and has not synchronized since — and the
  /// history automaton must be exactly {tid, W}, the state in which any
  /// further access by tid is a provable no-op. The epoch/ownership word is
  /// the *policy* gate (threads that never sync have epoch 0 and never
  /// match, so sync-free workloads keep bit-identical PR 3 sampling
  /// fidelity; a sync event rotates the epoch and forces one full-path
  /// access per line to refresh sampling); the history confirmation is the
  /// *soundness* gate (invalidation counts stay exact under every
  /// interleaving — see PackedHistoryTable::owned_write_by). Suppressed
  /// accesses are still counted, in owner-exclusive stripe counters, so
  /// total_accesses() stays exact. Suppression is a lock-free-mode
  /// optimization; the spinlock reference path ignores the epoch.
  AccessOutcome handle_access(Address addr, AccessType type, ThreadId tid,
                              std::uint64_t sample_window,
                              std::uint64_t sample_interval,
                              std::uint32_t epoch) {
    if (!armed_.load(std::memory_order_acquire)) [[unlikely]] {
      unarmed_accesses_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    if (!lock_free_) {
      return handle_access_spinlock(addr, type, tid, sample_window,
                                    sample_interval);
    }
    const std::uint64_t want = pack_sync(tid, epoch);
    if (want == 0) {
      // Never-synced thread (or unrepresentable tid/epoch): exact PR 3
      // behavior, no claims.
      return handle_access_lock_free(addr, type, tid, sample_window,
                                     sample_interval);
    }
    std::uint64_t seen = sync_word_.load(std::memory_order_relaxed);
    if (seen == want && packed_history_.owned_write_by(tid)) [[likely]] {
      Stripe& st = stripe_for_thread();
      Stripe::bump(type == AccessType::kWrite ? st.suppressed_writes
                                              : st.suppressed_reads);
      AccessOutcome outcome;
      outcome.suppressed = true;
      return outcome;
    }
    AccessOutcome outcome = handle_access_lock_free(
        addr, type, tid, sample_window, sample_interval);
    // Claim ownership for the epoch we just recorded under. Losing the CAS
    // race only means the next same-owner access falls through again —
    // never a wrong suppression, since a hit re-confirms the history state.
    sync_word_.compare_exchange_strong(seen, want, std::memory_order_relaxed,
                                       std::memory_order_relaxed);
    return outcome;
  }

  /// Synthetic ownership claim delivered at a handoff point
  /// (Session::handoff): stands in for the receiving thread's first write
  /// to the transferred line, which static sync-scoped pruning may have
  /// removed. Runs the history automaton (so any invalidation the pruned
  /// write would have caused is still counted) but touches neither the
  /// sampling clock nor the word histogram — the claim is not a sampled
  /// access. Returns true if the claim registered an invalidation.
  bool claim_for_handoff(ThreadId tid, std::uint32_t epoch) {
    bool invalidated = false;
    if (lock_free_) {
      if (packed_history_.access(tid, AccessType::kWrite) ==
          HistoryOutcome::kInvalidation) {
        Stripe::bump(stripe_for_thread().invalidations);
        invalidated = true;
      }
    } else {
      std::lock_guard<Spinlock> g(lock_);
      if (history_.access(tid, AccessType::kWrite) ==
          HistoryOutcome::kInvalidation) {
        ++invalidations_;
        invalidated = true;
      }
    }
    sync_word_.store(pack_sync(tid, epoch), std::memory_order_relaxed);
    return invalidated;
  }

  /// Completes escalation: from here on accesses advance the sampling clock.
  /// Idempotent; called by the runtime after tracker creation bookkeeping
  /// (staged-count purge, monitor emission) is done.
  void arm() { armed_.store(true, std::memory_order_release); }
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  bool lock_free() const { return lock_free_; }
  std::size_t line_index() const { return line_index_; }

  // --- snapshot accessors (thread-safe; used by reporting/prediction) ---

  std::uint64_t invalidations() const {
    if (lock_free_) {
      std::uint64_t n = 0;
      for_each_stripe([&](const Stripe& s) {
        n += s.invalidations.load(std::memory_order_relaxed);
      });
      return n;
    }
    std::lock_guard<Spinlock> g(lock_);
    return invalidations_;
  }
  std::uint64_t total_accesses() const {
    std::uint64_t n = unarmed_accesses_.load(std::memory_order_relaxed) +
                      suppressed_accesses();
    if (lock_free_) {
      for_each_stripe([&](const Stripe& s) {
        n += s.clock.count.load(std::memory_order_relaxed);
      });
      return n;
    }
    return n + access_counter_.load(std::memory_order_relaxed);
  }
  /// Accesses retired on the sync-aware ownership word (both modes; the
  /// counters live in the per-thread stripes either way).
  std::uint64_t suppressed_accesses() const {
    std::uint64_t n = 0;
    for_each_stripe([&](const Stripe& s) {
      n += s.suppressed_reads.load(std::memory_order_relaxed) +
           s.suppressed_writes.load(std::memory_order_relaxed);
    });
    return n;
  }
  std::uint64_t sampled_accesses() const {
    if (lock_free_) return lf_sampled_reads() + lf_sampled_writes();
    std::lock_guard<Spinlock> g(lock_);
    return sampled_accesses_;
  }
  std::uint64_t sampled_writes() const {
    if (lock_free_) return lf_sampled_writes();
    std::lock_guard<Spinlock> g(lock_);
    return sampled_writes_;
  }
  std::uint64_t sampled_reads() const {
    if (lock_free_) return lf_sampled_reads();
    std::lock_guard<Spinlock> g(lock_);
    return sampled_reads_;
  }

  /// Copy of the word histogram (size = words_per_line).
  std::vector<WordAccess> words_snapshot() const {
    std::vector<WordAccess> out(geometry_.words_per_line());
    if (lock_free_) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = atomic_words_[i].snapshot();
      }
      return out;
    }
    std::lock_guard<Spinlock> g(lock_);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = words_[i];
    return out;
  }

  /// Bytes of tracker metadata, including lazily-grown per-thread stripes
  /// and their published directories (Figure 8/9 accounting).
  std::size_t metadata_bytes() const {
    std::size_t bytes = sizeof(CacheTracker);
    std::lock_guard<Spinlock> g(stripe_lock_);
    bytes += stripes_.size() * sizeof(Stripe);
    for (const auto& dir : dir_published_) {
      bytes += dir->capacity() * sizeof(Stripe*);
    }
    return bytes;
  }

  // --- virtual line coverage (prediction verification, Section 3.4) ---

  /// Registers a virtual line whose range overlaps this physical line. The
  /// tracker does not own the virtual line; the runtime does. Publication
  /// is RCU-style: a new immutable snapshot vector is built and swapped in,
  /// so sampled-access fan-out reads the list without any lock. Superseded
  /// snapshots are retired, not freed, until the tracker dies (nominations
  /// are rare and finite, so retention is bounded).
  void add_virtual_line(VirtualLineTracker* vl) {
    std::lock_guard<Spinlock> g(vl_lock_);
    auto next = std::make_unique<std::vector<VirtualLineTracker*>>();
    if (const auto* cur = vl_snapshot_.load(std::memory_order_relaxed)) {
      *next = *cur;
    }
    next->push_back(vl);
    vl_snapshot_.store(next.get(), std::memory_order_release);
    vl_published_.push_back(std::move(next));
  }

  bool has_virtual_lines() const {
    return vl_snapshot_.load(std::memory_order_acquire) != nullptr;
  }

  /// Forwards a sampled access to every covering virtual line. Read-only
  /// fan-out over the published snapshot; concurrent nominations become
  /// visible on the next sampled access.
  void update_virtual_lines(Address addr, AccessType type, ThreadId tid) {
    const auto* lines = vl_snapshot_.load(std::memory_order_acquire);
    if (lines == nullptr) return;
    for (VirtualLineTracker* vl : *lines) {
      vl->access(addr, type, tid);
    }
  }

  /// Clears the word histogram and history table so a recycled object
  /// starting on this line is not blamed for its predecessor's accesses
  /// (the "updates recording information at memory de-allocations" rule of
  /// Section 2.3.2). Only called for lines with zero invalidations.
  void reset_for_reuse() {
    {
      std::lock_guard<Spinlock> g(lock_);
      history_.reset();
      invalidations_ = 0;
      sampled_accesses_ = sampled_reads_ = sampled_writes_ = 0;
      words_.fill(WordAccess{});
    }
    access_counter_.store(0, std::memory_order_relaxed);
    packed_history_.reset();
    for (AtomicWordAccess& w : atomic_words_) w.reset();
    if (const auto* dir = stripe_dir_.load(std::memory_order_acquire)) {
      // Cross-thread stores; a concurrently ticking owner resyncs (see
      // SampleClock::tick).
      for (Stripe* s : *dir) {
        if (s == nullptr) continue;
        s->clock.reset();
        s->sampled_reads.store(0, std::memory_order_relaxed);
        s->sampled_writes.store(0, std::memory_order_relaxed);
        s->invalidations.store(0, std::memory_order_relaxed);
        s->suppressed_reads.store(0, std::memory_order_relaxed);
        s->suppressed_writes.store(0, std::memory_order_relaxed);
      }
    }
    unarmed_accesses_.store(0, std::memory_order_relaxed);
    sync_word_.store(0, std::memory_order_relaxed);
  }

  /// Marks that the predictor already analyzed this line (step 3 of the
  /// Section 3.2 workflow runs once per line). Returns true for the caller
  /// that wins the transition.
  bool try_begin_prediction() {
    return !prediction_done_.exchange(true, std::memory_order_acq_rel);
  }

 private:
  /// One per-thread sampling stripe: a host-line-padded block owned
  /// exclusively by one OS thread (stripe tokens are never reused), so
  /// every update is a relaxed load/store pair — cross-thread readers see
  /// atomic snapshots, and owner increments can never be lost.
  struct alignas(kCacheLineSize) Stripe {
    SampleClock clock;
    std::atomic<std::uint64_t> sampled_reads{0};
    std::atomic<std::uint64_t> sampled_writes{0};
    std::atomic<std::uint64_t> invalidations{0};
    /// Accesses retired on the sync-aware ownership word. Kept here — in
    /// owner-exclusive memory — rather than in the shared word itself, so
    /// total_accesses() stays exact without any RMW on the fast hit.
    std::atomic<std::uint64_t> suppressed_reads{0};
    std::atomic<std::uint64_t> suppressed_writes{0};

    /// Owner-exclusive increment: no lock-prefixed RMW.
    static void bump(std::atomic<std::uint64_t>& c) {
      c.store(c.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
    }
  };
  static_assert(sizeof(Stripe) == kCacheLineSize);

  AccessOutcome handle_access_lock_free(Address addr, AccessType type,
                                        ThreadId tid, std::uint64_t window,
                                        std::uint64_t interval) {
    Stripe& st = stripe_for_thread();
    if (!st.clock.tick(window, interval)) {
      return {};  // outside the sampling window: count only
    }
    AccessOutcome outcome;
    outcome.sampled = true;
    if (type == AccessType::kWrite) {
      Stripe::bump(st.sampled_writes);
    } else {
      Stripe::bump(st.sampled_reads);
    }
    atomic_words_[geometry_.word_in_line(addr)].record(tid, type);
    if (packed_history_.access(tid, type) == HistoryOutcome::kInvalidation) {
      Stripe::bump(st.invalidations);
      outcome.invalidated = true;
    }
    return outcome;
  }

  /// The pre-PR3 seed path, verbatim: global access counter with a
  /// hardware-divide sampling modulo, then one per-line spinlock around
  /// every sampled update. Kept as the ablation baseline and the
  /// determinism reference.
  AccessOutcome handle_access_spinlock(Address addr, AccessType type,
                                       ThreadId tid, std::uint64_t window,
                                       std::uint64_t interval) {
    const std::uint64_t n =
        access_counter_.fetch_add(1, std::memory_order_relaxed);
    if (n % interval >= window) {
      return {};  // outside the sampling window: count only
    }
    AccessOutcome outcome;
    outcome.sampled = true;
    std::lock_guard<Spinlock> g(lock_);
    ++sampled_accesses_;
    if (type == AccessType::kWrite) {
      ++sampled_writes_;
    } else {
      ++sampled_reads_;
    }
    words_[geometry_.word_in_line(addr)].record(tid, type);
    if (history_.access(tid, type) == HistoryOutcome::kInvalidation) {
      ++invalidations_;
      outcome.invalidated = true;
    }
    return outcome;
  }

  /// The calling thread's stripe: an acquire load of the published
  /// directory plus an index — the slow (locked) registration runs once per
  /// (thread, tracker) pair.
  Stripe& stripe_for_thread() {
    const std::uint32_t token = detail::stripe_token();
    const auto* dir = stripe_dir_.load(std::memory_order_acquire);
    if (dir != nullptr && token < dir->size() && (*dir)[token] != nullptr)
        [[likely]] {
      return *(*dir)[token];
    }
    return register_stripe(token);
  }

  Stripe& register_stripe(std::uint32_t token) {
    std::lock_guard<Spinlock> g(stripe_lock_);
    const auto* cur = stripe_dir_.load(std::memory_order_relaxed);
    auto next = std::make_unique<std::vector<Stripe*>>();
    if (cur != nullptr) *next = *cur;
    if (next->size() <= token) next->resize(token + 1, nullptr);
    if ((*next)[token] == nullptr) {
      stripes_.emplace_back();
      (*next)[token] = &stripes_.back();
    }
    Stripe& stripe = *(*next)[token];
    stripe_dir_.store(next.get(), std::memory_order_release);
    dir_published_.push_back(std::move(next));
    return stripe;
  }

  /// Iterates every registered stripe via the published directory (safe
  /// against concurrent registration; no lock).
  template <typename F>
  void for_each_stripe(F&& fn) const {
    const auto* dir = stripe_dir_.load(std::memory_order_acquire);
    if (dir == nullptr) return;
    for (const Stripe* s : *dir) {
      if (s != nullptr) fn(*s);
    }
  }

  std::uint64_t lf_sampled_reads() const {
    std::uint64_t n = 0;
    for_each_stripe([&](const Stripe& s) {
      n += s.sampled_reads.load(std::memory_order_relaxed);
    });
    return n;
  }
  std::uint64_t lf_sampled_writes() const {
    std::uint64_t n = 0;
    for_each_stripe([&](const Stripe& s) {
      n += s.sampled_writes.load(std::memory_order_relaxed);
    });
    return n;
  }

  // --- spinlock (seed ablation / determinism reference) state ---
  mutable Spinlock lock_;
  HistoryTable history_;
  std::uint64_t invalidations_ = 0;
  std::uint64_t sampled_accesses_ = 0;
  std::uint64_t sampled_reads_ = 0;
  std::uint64_t sampled_writes_ = 0;
  std::array<WordAccess, kMaxWords> words_{};
  std::atomic<std::uint64_t> access_counter_{0};

  // --- lock-free state ---
  PackedHistoryTable packed_history_;
  std::array<AtomicWordAccess, kMaxWords> atomic_words_{};
  mutable Spinlock stripe_lock_;  ///< serializes stripe registration only
  std::atomic<const std::vector<Stripe*>*> stripe_dir_{nullptr};
  std::deque<Stripe> stripes_;  ///< stable addresses; one per OS thread
  std::vector<std::unique_ptr<std::vector<Stripe*>>> dir_published_;

  /// Packed sync-aware ownership word:
  ///   bit 63        valid
  ///   bits 62..40   owner thread id (23 bits; wider tids never fast-hit)
  ///   bits 39..24   owner epoch (low 16 bits of the thread's sync counter)
  ///   bits 23..0    zero (reserved)
  /// A zero return means "never matches": unrepresentable tids, and —
  /// deliberately — epoch 0, the state of a thread that has never issued a
  /// sync event. Sync-free code therefore never claims and never fast-hits,
  /// keeping its sampling stream byte-identical to the suppression-off
  /// build; the 16-bit epoch wrap re-enters the never-match state for one
  /// epoch every 65536 syncs, which merely costs full-path accesses.
  static constexpr std::uint64_t kSyncValid = 1ull << 63;
  static constexpr std::uint64_t kSyncMaxTid = 0x7fffffull;
  static std::uint64_t pack_sync(ThreadId tid, std::uint32_t epoch) {
    const auto t = static_cast<std::uint64_t>(tid);
    if (t > kSyncMaxTid || (epoch & 0xffffu) == 0) return 0;
    return kSyncValid | (t << 40) |
           (static_cast<std::uint64_t>(epoch & 0xffffu) << 24);
  }

  // --- mode-independent ---
  std::atomic<std::uint64_t> sync_word_{0};
  std::atomic<std::uint64_t> unarmed_accesses_{0};
  std::atomic<bool> armed_;
  std::atomic<bool> prediction_done_{false};

  mutable Spinlock vl_lock_;  ///< serializes nominations (writers only)
  std::atomic<const std::vector<VirtualLineTracker*>*> vl_snapshot_{nullptr};
  std::vector<std::unique_ptr<std::vector<VirtualLineTracker*>>>
      vl_published_;

  const std::size_t line_index_;
  const LineGeometry geometry_;
  const bool lock_free_;
};

// Adjacent trackers (ShadowSpace arena slots) must not themselves falsely
// share: the tracker starts on a host line boundary and occupies a whole
// number of host lines. alignas on the class gives both (sizeof is padded
// to a multiple of the alignment), and C++17 aligned operator new keeps the
// guarantee for the heap-allocated trackers the arena owns.
static_assert(alignof(CacheTracker) == kCacheLineSize);
static_assert(sizeof(CacheTracker) % kCacheLineSize == 0);

}  // namespace pred
