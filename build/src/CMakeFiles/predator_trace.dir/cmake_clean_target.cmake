file(REMOVE_RECURSE
  "libpredator_trace.a"
)
