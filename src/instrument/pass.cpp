#include "instrument/pass.hpp"

#include <algorithm>
#include <set>

namespace pred::ir {

namespace {

bool contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

/// Key identifying "the same address, same access type" within one block:
/// the address register, the constant offset, the access width, and whether
/// it is a load or a store.
struct AccessKey {
  Reg base;
  std::int64_t offset;
  std::uint32_t size;
  bool is_store;
  auto operator<=>(const AccessKey&) const = default;
};

void instrument_function(Function& fn, const PassOptions& options,
                         PassStats& stats) {
  for (BasicBlock& bb : fn.blocks) {
    std::set<AccessKey> seen;  // reset at block boundaries
    for (Instr& instr : bb.instrs) {
      if (is_memory_intrinsic(instr.op)) {
        // memset/memcpy touch a dynamic range: always instrumented (the
        // per-address dedup cannot apply), subject to writes-only mode for
        // the pure-read half handled at runtime.
        ++stats.candidate_accesses;
        instr.instrumented = true;
        ++stats.instrumented_accesses;
        continue;
      }
      if (is_memory_access(instr.op)) {
        ++stats.candidate_accesses;
        const bool is_store = instr.op == Opcode::kStore;
        if (!is_store && options.mode == InstrumentMode::kWritesOnly) {
          ++stats.skipped_reads;
        } else {
          const AccessKey key{instr.a, instr.imm, instr.size, is_store};
          if (options.selective && !seen.insert(key).second) {
            ++stats.skipped_duplicates;
          } else {
            instr.instrumented = true;
            ++stats.instrumented_accesses;
          }
        }
      }
      // A redefinition of a register invalidates remembered address
      // expressions built on it: "the same address" must mean the same
      // value, not merely the same register name.
      const bool defines =
          instr.op != Opcode::kStore && instr.op != Opcode::kBr &&
          instr.op != Opcode::kCondBr && instr.op != Opcode::kRet;
      if (defines) {
        for (auto it = seen.begin(); it != seen.end();) {
          it = it->base == instr.dst ? seen.erase(it) : std::next(it);
        }
      }
    }
  }
}

}  // namespace

PassStats run_instrumentation_pass(Module& module,
                                   const PassOptions& options) {
  PassStats stats;
  for (Function& fn : module.functions) {
    const bool allowed =
        (options.whitelist.empty() || contains(options.whitelist, fn.name)) &&
        !contains(options.blacklist, fn.name);
    if (!allowed) {
      ++stats.skipped_functions;
      continue;
    }
    instrument_function(fn, options, stats);
  }
  return stats;
}

}  // namespace pred::ir
