file(REMOVE_RECURSE
  "CMakeFiles/test_ir_parser.dir/test_ir_parser.cpp.o"
  "CMakeFiles/test_ir_parser.dir/test_ir_parser.cpp.o.d"
  "test_ir_parser"
  "test_ir_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
