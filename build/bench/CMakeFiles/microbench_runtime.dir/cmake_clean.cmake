file(REMOVE_RECURSE
  "CMakeFiles/microbench_runtime.dir/microbench_runtime.cpp.o"
  "CMakeFiles/microbench_runtime.dir/microbench_runtime.cpp.o.d"
  "microbench_runtime"
  "microbench_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
