#include "instrument/analysis/constants.hpp"

namespace pred::ir {

ConstantFacts analyze_constants(const Function& fn, const Cfg& cfg) {
  ConstantFacts out;
  out.block_entry = solve_forward(fn, cfg, ConstantAnalysis{});
  for (std::uint32_t b : cfg.reverse_postorder()) {
    for (const ConstLattice& c : out.block_entry[b]) {
      if (c.is_const()) ++out.facts;
    }
  }
  return out;
}

}  // namespace pred::ir
