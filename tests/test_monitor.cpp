// Live-monitor tests: the SPSC event ring's ordering/overflow/accounting
// contracts, snapshot-vs-final-report agreement on a deterministic
// workload, the snapshot flush ordering guarantee, drop-counter telemetry,
// and race-free start/stop/snapshot under concurrent mutators (the
// test_stress.cpp discipline: invariants, not exact counts).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/predator.hpp"
#include "monitor/event_ring.hpp"

namespace pred {
namespace {

constexpr auto W = AccessType::kWrite;

MonitorEvent sample_event(std::uint64_t i) {
  return MonitorEvent{/*addr=*/0x1000 + 64 * i, /*arg=*/i,
                      /*tid=*/static_cast<ThreadId>(i % 7),
                      MonitorEventType::kSampleHit};
}

TEST(EventRing, DeliversInOrderWithIntactPayloads) {
  EventRing ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(sample_event(i));

  std::vector<MonitorEvent> got;
  ring.drain([&](const MonitorEvent& ev) { got.push_back(ev); });

  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].addr, 0x1000 + 64 * i);
    EXPECT_EQ(got[i].arg, i);
    EXPECT_EQ(got[i].tid, static_cast<ThreadId>(i % 7));
    EXPECT_EQ(got[i].type, MonitorEventType::kSampleHit);
  }
  EXPECT_EQ(ring.produced(), 10u);
  EXPECT_EQ(ring.consumed(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, OverflowDropsOldestAndCountsExactly) {
  EventRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) ring.push(sample_event(i));

  // No consumer ran: the 12 oldest were overwritten, each counted.
  EXPECT_EQ(ring.produced(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);

  // What survives is exactly the newest capacity-many events, in order
  // and uncorrupted.
  std::vector<MonitorEvent> got;
  ring.drain([&](const MonitorEvent& ev) { got.push_back(ev); });
  ASSERT_EQ(got.size(), 8u);
  for (std::uint64_t i = 0; i < got.size(); ++i) {
    const std::uint64_t expect = 12 + i;
    EXPECT_EQ(got[i].arg, expect);
    EXPECT_EQ(got[i].addr, 0x1000 + 64 * expect);
  }
  EXPECT_EQ(ring.consumed() + ring.dropped(), ring.produced());
}

TEST(EventRing, ConcurrentProducerConsumerKeepsAccountingSane) {
  EventRing ring(64);
  constexpr std::uint64_t kEvents = 200'000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) ring.push(sample_event(i));
  });

  // Consume concurrently; every delivered event must be intact (fields
  // consistent with one specific i) and delivered in strictly increasing
  // order — a torn read would break both.
  std::uint64_t last = 0;
  bool first = true;
  std::uint64_t delivered = 0;
  while (ring.consumed() + ring.dropped() < kEvents) {
    ring.drain([&](const MonitorEvent& ev) {
      ASSERT_EQ(ev.addr, 0x1000 + 64 * ev.arg);
      ASSERT_EQ(ev.tid, static_cast<ThreadId>(ev.arg % 7));
      if (!first) ASSERT_GT(ev.arg, last);
      last = ev.arg;
      first = false;
      ++delivered;
    });
  }
  producer.join();
  ring.drain([&](const MonitorEvent& ev) {
    ASSERT_GT(ev.arg, last);
    last = ev.arg;
    ++delivered;
  });

  EXPECT_EQ(ring.produced(), kEvents);
  EXPECT_EQ(ring.consumed(), delivered);
  // dropped() may overcount events salvaged mid-overwrite, never under.
  EXPECT_GE(ring.consumed() + ring.dropped(), ring.produced());
  EXPECT_LE(ring.consumed(), ring.produced());
}

// Deterministic sessions: every access sampled, no prediction, a ring big
// enough that nothing is shed, and an aggregator interval long enough that
// only snapshot() drains — so snapshot contents are exactly reproducible.
SessionOptions deterministic_options() {
  SessionOptions o;
  o.heap_size = 16 * 1024 * 1024;
  o.runtime.tracking_threshold = 4;
  o.runtime.prediction_threshold = 1 << 30;
  o.runtime.report_invalidation_threshold = 1;
  o.runtime.prediction_enabled = false;
  o.runtime.set_sampling_rate(1.0);
  o.monitor.ring_capacity = 1 << 16;
  o.monitor.aggregation_interval_ms = 10'000;
  return o;
}

TEST(Monitor, SnapshotMatchesFinalReport) {
#ifdef PREDATOR_DISABLE_MONITOR
  GTEST_SKIP() << "monitor emission compiled out (PREDATOR_MONITOR=OFF)";
#endif
  Session session(deterministic_options());
  session.monitor().start();

  // Two logical threads ping-pong writes on one line: textbook false
  // sharing, every post-escalation write sampled, every sampled write after
  // the first an invalidation. Emission all happens from this one OS
  // thread, so the event stream is lossless and ordered.
  auto* obj = static_cast<long*>(session.alloc(64, session.intern_frames({"monitor.c:ping_pong"})));
  for (int i = 0; i < 200; ++i) {
    session.record(&obj[(i % 2) * 2], W, static_cast<ThreadId>(i % 2), 8);
  }

  const MonitorSnapshot mid = session.monitor().snapshot();
  for (int i = 200; i < 400; ++i) {
    session.record(&obj[(i % 2) * 2], W, static_cast<ThreadId>(i % 2), 8);
  }
  const MonitorSnapshot fin = session.monitor().snapshot();
  session.monitor().stop();

  ASSERT_EQ(mid.events_dropped, 0u);
  ASSERT_EQ(fin.events_dropped, 0u);
  ASSERT_EQ(fin.top_lines.size(), 1u);

  // The snapshot's per-line telemetry must agree with the authoritative
  // tracker state for every line escalated at snapshot time...
  const ShadowSpace* region =
      session.runtime().find_region(reinterpret_cast<Address>(obj));
  ASSERT_NE(region, nullptr);
  const CacheTracker* tracker = region->tracker(
      region->line_index(reinterpret_cast<Address>(obj)));
  ASSERT_NE(tracker, nullptr);
  const MonitorSnapshot::LineEntry& line = fin.top_lines[0];
  EXPECT_TRUE(line.escalated);
  EXPECT_EQ(line.line_start,
            region->line_start(
                region->line_index(reinterpret_cast<Address>(obj))));
  EXPECT_EQ(line.invalidations, tracker->invalidations());
  EXPECT_EQ(line.samples, tracker->sampled_accesses());
  EXPECT_EQ(line.sample_writes, tracker->sampled_writes());

  // ...and with the final report built from that state.
  const Report report = session.report();
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.total_invalidations, fin.invalidations);
  ASSERT_EQ(report.findings[0].lines.size(), 1u);
  EXPECT_EQ(report.findings[0].lines[0].invalidations, line.invalidations);
  EXPECT_EQ(report.findings[0].lines[0].sampled_accesses, line.samples);

  // The mid-run snapshot is a prefix: counts only grow.
  ASSERT_EQ(mid.top_lines.size(), 1u);
  EXPECT_EQ(mid.top_lines[0].line_start, line.line_start);
  EXPECT_LT(mid.top_lines[0].invalidations, line.invalidations);
  EXPECT_LT(mid.top_lines[0].samples, line.samples);
  EXPECT_LT(mid.sequence, fin.sequence);

  // Attribution resolved to the allocation callsite.
  EXPECT_TRUE(line.attributed);
  EXPECT_EQ(line.label, "monitor.c:ping_pong");
}

TEST(Monitor, SnapshotFlushesStagedCounters) {
  // The satellite contract: snapshot() publishes the calling thread's
  // staged write counters exactly like report() does.
  SessionOptions o;
  o.heap_size = 16 * 1024 * 1024;
  o.runtime.tracking_threshold = 1 << 20;  // never escalate: stay staged
  o.runtime.prediction_threshold = 1 << 30;
  Session session(o);
  session.monitor().start();

  auto* obj = static_cast<long*>(session.alloc(64, session.intern_frames({"monitor.c:staged"})));
  const ShadowSpace* region =
      session.runtime().find_region(reinterpret_cast<Address>(obj));
  ASSERT_NE(region, nullptr);
  const std::size_t line =
      region->line_index(reinterpret_cast<Address>(obj));

  {
    ScopedThread guard(session, 0);
    for (int i = 0; i < 3; ++i) session.record(obj, W, 0, 8);
    // Still staged thread-locally: the shared counter has not moved.
    EXPECT_EQ(region->writes_count(line), 0u);
    (void)session.monitor().snapshot();
    EXPECT_EQ(region->writes_count(line), 3u);
  }
  session.monitor().stop();
}

TEST(Monitor, DropCountersSurfacedInSnapshot) {
#ifdef PREDATOR_DISABLE_MONITOR
  GTEST_SKIP() << "monitor emission compiled out (PREDATOR_MONITOR=OFF)";
#endif
  SessionOptions o = deterministic_options();
  o.monitor.ring_capacity = 8;  // tiny ring, sleepy aggregator: must shed
  Session session(o);
  session.monitor().start();

  auto* obj = static_cast<long*>(session.alloc(64, session.intern_frames({"monitor.c:flood"})));
  for (int i = 0; i < 5'000; ++i) {
    session.record(&obj[(i % 2) * 2], W, static_cast<ThreadId>(i % 2), 8);
  }
  const MonitorSnapshot snap = session.monitor().snapshot();
  session.monitor().stop();

  EXPECT_GT(snap.events_dropped, 0u);
  ASSERT_EQ(snap.rings.size(), 1u);
  // Producer and consumer are quiescent here, so accounting is exact.
  EXPECT_EQ(snap.rings[0].produced,
            snap.rings[0].consumed + snap.rings[0].dropped);
  // Shedding loses telemetry, never integrity: what was aggregated is
  // still a coherent view of one hot line.
  ASSERT_GE(snap.top_lines.size(), 1u);
  EXPECT_TRUE(snap.top_lines[0].escalated);
  EXPECT_GT(snap.top_lines[0].samples, 0u);
  EXPECT_EQ(snap.events_seen + snap.events_dropped,
            snap.rings[0].produced);
}

// Lifecycle churn is exercised even with emission compiled out (start/stop
// and snapshots must stay safe either way); the event-count assertions are
// what need the emitting build.
TEST(Monitor, StartStopSnapshotRaceFreeUnderMutators) {
#ifdef PREDATOR_DISABLE_MONITOR
  GTEST_SKIP() << "monitor emission compiled out (PREDATOR_MONITOR=OFF)";
#endif
  SessionOptions o;
  o.heap_size = 64 * 1024 * 1024;
  o.runtime.tracking_threshold = 4;
  o.runtime.prediction_threshold = 64;
  o.runtime.report_invalidation_threshold = 1;
  o.runtime.set_sampling_rate(1.0);   // every tracked access emits
  o.monitor.ring_capacity = 256;      // small: force shedding under load
  o.monitor.aggregation_interval_ms = 1;
  Session session(o);

  constexpr int kThreads = 4;
  auto* shared = static_cast<long*>(session.alloc(64, session.intern_frames({"monitor.c:shared"})));
  for (int i = 0; i < 8; ++i) shared[i] = 0;

  // Mutators run until the lifecycle churn below is done (a fixed step
  // count can finish before the monitor first starts on a small host).
  std::atomic<bool> stop{false};
  std::vector<std::thread> mutators;
  for (int t = 0; t < kThreads; ++t) {
    mutators.emplace_back([&, t] {
      ScopedThread guard(session, static_cast<ThreadId>(t));
      for (std::uint64_t step = 0; !stop.load(std::memory_order_acquire);
           ++step) {
        session.record(&shared[t], W, static_cast<ThreadId>(t), 8);
        shared[t] += 1;
        if ((step & 1023) == 0) std::this_thread::yield();
      }
    });
  }

  // Main thread churns the monitor lifecycle while mutators emit into it:
  // restarts, concurrent snapshots, and stop-while-hot must all be safe.
  std::uint64_t last_samples = 0;
  for (int round = 0; round < 30; ++round) {
    session.monitor().start();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const MonitorSnapshot snap = session.monitor().snapshot();
    EXPECT_GE(snap.samples, last_samples);  // aggregate only grows
    last_samples = snap.samples;
    if (round % 3 == 0) session.monitor().stop();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : mutators) th.join();
  session.monitor().stop();

  const MonitorSnapshot fin = session.monitor().snapshot();
  EXPECT_GT(fin.samples, 0u);
  EXPECT_TRUE(!fin.top_lines.empty());
  for (const auto& ring : fin.rings) {
    EXPECT_GE(ring.produced, ring.consumed);
    EXPECT_GE(ring.consumed + ring.dropped, ring.produced);
  }
  // The monitor never perturbs the authoritative detector state: the
  // standard report still sees the contended line.
  const Report report = session.report();
  EXPECT_GT(report.total_invalidations, 0u);
}

}  // namespace
}  // namespace pred
