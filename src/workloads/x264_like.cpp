// PARSEC x264 (modeled): no false sharing and low Figure 7 overhead — the
// encoder spends most of its time in uninstrumented arithmetic (here: the
// SAD inner loop over registers) with only a handful of memory accesses per
// macroblock.
#include <cstring>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class X264Like final : public WorkloadImpl<X264Like> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "x264", .suite = "parsec", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t macroblocks = 1200 * p.scale;
    constexpr std::uint64_t kBlock = 64;  // 8x8 residual

    std::vector<unsigned char*> frame(n);
    std::vector<std::int64_t*> cost(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      frame[t] = static_cast<unsigned char*>(
          h.alloc(macroblocks * 8, {"x264/encoder.c:frame"}));
      cost[t] = static_cast<std::int64_t*>(
          h.alloc(macroblocks * 8, {"x264/encoder.c:cost"}));
      PRED_CHECK(frame[t] && cost[t]);
      for (std::uint64_t i = 0; i < macroblocks * 8; ++i) {
        frame[t][i] = static_cast<unsigned char>(rng.next());
      }
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      for (std::uint64_t mb = 0; mb < macroblocks; ++mb) {
        sink.read(&frame[t][mb * 8], 8);
        std::uint64_t seed = 0;
        std::memcpy(&seed, &frame[t][mb * 8], 8);
        // SAD search: all-register work, nothing for the pass to
        // instrument.
        std::int64_t best = INT64_MAX;
        Xorshift64 local(seed | 1);
        for (std::uint64_t c = 0; c < kBlock; ++c) {
          const auto cand = static_cast<std::int64_t>(local.next_below(4096));
          if (cand < best) best = cand;
        }
        cost[t][mb] = best;
        sink.write(&cost[t][mb], 8);
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (std::uint64_t mb = 0; mb < macroblocks; mb += 13) {
        r.checksum += static_cast<std::uint64_t>(cost[t][mb]);
      }
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_x264_like() {
  return std::make_unique<X264Like>();
}

}  // namespace pred::wl
