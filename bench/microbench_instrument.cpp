// Measures what the whole-function pruning passes buy on generated
// loop-heavy IR modules: fewer static instrumentation sites, fewer dynamic
// runtime calls, and higher interpreter throughput — all at an identical
// delivered-access stream (tests/test_analysis.cpp proves the resulting
// detector reports are bit-identical).
//
// Configurations, cumulative over the Section 2.4.2 per-block dedup:
//   selective    per-block dedup only (the seed pipeline)
//   +dominance   plus value-numbered chain merging
//   +batching    plus loop-invariant hoisting into trip-count reports
//   all          both whole-function passes
//
// A second, call-heavy workload set (generated with a callee pool) then
// measures what the interprocedural layer adds on top: exact callee
// summaries let loops batch THROUGH calls ("+interproc"), retargeting them
// to uninstrumented "$bare" clones — the headline criterion is the
// additional dynamic runtime-call reduction over the intraprocedural
// passes alone.
//
//   microbench_instrument [--json]   (--json also writes BENCH_instrument.json)
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "instrument/analysis/generator.hpp"
#include "instrument/interp.hpp"
#include "instrument/pass.hpp"

using namespace pred;

namespace {

struct Config {
  const char* name;
  bool dominance;
  bool batching;
  bool interproc = false;
};

struct Result {
  std::uint64_t static_sites = 0;    // marked accesses + intrinsics + reports
  std::uint64_t runtime_calls = 0;   // dynamic calls into the runtime
  std::uint64_t delivered = 0;       // access units the detector consumed
  double seconds = 0;
};

constexpr std::size_t kBufWords = 1024;
alignas(64) std::int64_t g_buffer[kBufWords];

Result run_config(const std::vector<ir::Module>& modules, const Config& cfg,
                  std::int64_t iterations, int rounds) {
  Result res;
  std::vector<ir::Module> pruned = modules;
  ir::PassOptions opt;
  opt.dominance_elim = cfg.dominance;
  opt.loop_batching = cfg.batching;
  opt.interprocedural = cfg.interproc;
  // An interprocedural pass may append "$bare" clones; drive only the
  // original functions so every configuration runs the same entry points.
  std::vector<std::size_t> original(pruned.size());
  for (std::size_t i = 0; i < pruned.size(); ++i) {
    original[i] = pruned[i].functions.size();
    const ir::PassStats stats = ir::run_instrumentation_pass(pruned[i], opt);
    res.static_sites += stats.instrumented_accesses + stats.intrinsic_accesses +
                        stats.reports_inserted;
  }

  // Deterministic detector configuration (same as the report-equivalence
  // property test): full sampling, no prediction, every line pre-escalated.
  SessionOptions sopts;
  sopts.runtime.tracking_threshold = 1;
  sopts.runtime.report_invalidation_threshold = 1;
  sopts.runtime.prediction_enabled = false;
  sopts.runtime.set_sampling_rate(1.0);
  sopts.heap_size = 4 * 1024 * 1024;
  Session session(sopts);
  std::memset(g_buffer, 0, sizeof g_buffer);
  session.register_global(g_buffer, sizeof g_buffer, "bench_buffer");
  for (std::size_t w = 0; w < kBufWords; w += 8) {
    session.record(&g_buffer[w], AccessType::kWrite, 0, 8);
  }

  ir::Interpreter interp(&session);
  const std::int64_t args[] = {
      static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(g_buffer)),
      iterations};
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (ThreadId tid = 0; tid < 2; ++tid) {
      for (std::size_t i = 0; i < pruned.size(); ++i) {
        const ir::Module& m = pruned[i];
        for (std::size_t f = 0; f < original[i]; ++f) {
          const auto r = interp.run(m, m.functions[f], args, tid);
          res.runtime_calls += r.runtime_calls;
          res.delivered += r.accesses_delivered;
        }
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::string(argv[1]) == "--json";

  // Loop-heavy generated modules: more segments and denser blocks than the
  // generator default, so invariant-in-loop accesses dominate.
  ir::GeneratorOptions gopts;
  gopts.segments = 5;
  gopts.accesses_per_block = 4;
  std::vector<ir::Module> modules;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    modules.push_back(ir::generate_module(seed, gopts));
  }

  const Config configs[] = {
      {"selective", false, false},
      {"+dominance", true, false},
      {"+batching", false, true},
      {"all", true, true},
  };

  std::printf("%-12s %12s %14s %14s %10s %12s\n", "config", "static sites",
              "runtime calls", "delivered", "seconds", "ns/delivered");
  bench::print_rule();

  std::vector<Result> results;
  for (const Config& cfg : configs) {
    results.push_back(run_config(modules, cfg, /*iterations=*/128,
                                 /*rounds=*/6));
    const Result& r = results.back();
    std::printf("%-12s %12llu %14llu %14llu %10.4f %12.2f\n", cfg.name,
                static_cast<unsigned long long>(r.static_sites),
                static_cast<unsigned long long>(r.runtime_calls),
                static_cast<unsigned long long>(r.delivered), r.seconds,
                r.delivered ? r.seconds * 1e9 / static_cast<double>(r.delivered)
                            : 0.0);
  }

  const Result& base = results[0];
  const Result& all = results[3];
  const double call_reduction =
      base.runtime_calls
          ? 100.0 *
                static_cast<double>(base.runtime_calls - all.runtime_calls) /
                static_cast<double>(base.runtime_calls)
          : 0.0;
  const bool conserved = base.delivered == all.delivered &&
                         results[1].delivered == base.delivered &&
                         results[2].delivered == base.delivered;
  std::printf("\nruntime-call reduction (all vs selective): %.1f%%\n",
              call_reduction);
  std::printf("delivered access stream conserved: %s\n",
              conserved ? "yes" : "NO — pruning is unsound");

  // Call-heavy set: the same generator with a callee pool, so hot loops
  // spend their iterations inside calls — the workloads the intraprocedural
  // passes cannot touch and call batching through summaries can.
  ir::GeneratorOptions copts;
  copts.segments = 5;
  copts.accesses_per_block = 4;
  copts.callees = 5;
  copts.summarizable_callees = true;  // hot accessor-helper shape
  std::vector<ir::Module> call_modules;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    call_modules.push_back(ir::generate_module(seed, copts));
  }

  const Config call_configs[] = {
      {"selective", false, false, false},
      {"intra", true, true, false},     // PR 4 pipeline: no call knowledge
      {"+interproc", true, true, true}, // plus summaries + call batching
  };
  std::printf("\ncall-heavy modules (callee pool %u):\n", copts.callees);
  std::printf("%-12s %12s %14s %14s %10s %12s\n", "config", "static sites",
              "runtime calls", "delivered", "seconds", "ns/delivered");
  bench::print_rule();
  std::vector<Result> call_results;
  for (const Config& cfg : call_configs) {
    call_results.push_back(run_config(call_modules, cfg, /*iterations=*/128,
                                      /*rounds=*/6));
    const Result& r = call_results.back();
    std::printf("%-12s %12llu %14llu %14llu %10.4f %12.2f\n", cfg.name,
                static_cast<unsigned long long>(r.static_sites),
                static_cast<unsigned long long>(r.runtime_calls),
                static_cast<unsigned long long>(r.delivered), r.seconds,
                r.delivered ? r.seconds * 1e9 / static_cast<double>(r.delivered)
                            : 0.0);
  }
  const Result& c_intra = call_results[1];
  const Result& c_inter = call_results[2];
  const double callheavy_reduction =
      c_intra.runtime_calls
          ? 100.0 *
                static_cast<double>(c_intra.runtime_calls -
                                    c_inter.runtime_calls) /
                static_cast<double>(c_intra.runtime_calls)
          : 0.0;
  const bool call_conserved =
      call_results[0].delivered == c_intra.delivered &&
      call_results[0].delivered == c_inter.delivered;
  std::printf(
      "\nadditional runtime-call reduction (+interproc vs intra): %.1f%%\n",
      callheavy_reduction);
  std::printf("delivered access stream conserved: %s\n",
              call_conserved ? "yes" : "NO — pruning is unsound");

  if (json) {
    bench::JsonWriter w;
    w.add("static_sites_selective", static_cast<double>(base.static_sites));
    w.add("static_sites_all", static_cast<double>(all.static_sites));
    w.add("runtime_calls_selective", static_cast<double>(base.runtime_calls));
    w.add("runtime_calls_dominance",
          static_cast<double>(results[1].runtime_calls));
    w.add("runtime_calls_batching",
          static_cast<double>(results[2].runtime_calls));
    w.add("runtime_calls_all", static_cast<double>(all.runtime_calls));
    w.add("call_reduction_pct", call_reduction);
    w.add("delivered_conserved", conserved ? 1.0 : 0.0);
    w.add("seconds_selective", base.seconds);
    w.add("seconds_all", all.seconds);
    w.add("runtime_calls_callheavy_selective",
          static_cast<double>(call_results[0].runtime_calls));
    w.add("runtime_calls_callheavy_intra",
          static_cast<double>(c_intra.runtime_calls));
    w.add("runtime_calls_callheavy_interproc",
          static_cast<double>(c_inter.runtime_calls));
    w.add("call_reduction_callheavy_pct", callheavy_reduction);
    w.add("delivered_conserved_callheavy", call_conserved ? 1.0 : 0.0);
    w.add("seconds_callheavy_intra", c_intra.seconds);
    w.add("seconds_callheavy_interproc", c_inter.seconds);
    if (!w.write_file("BENCH_instrument.json")) {
      std::fprintf(stderr, "cannot write BENCH_instrument.json\n");
      return 1;
    }
    std::printf("wrote BENCH_instrument.json\n");
  }
  return conserved && call_conserved ? 0 : 1;
}
