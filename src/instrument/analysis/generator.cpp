#include "instrument/analysis/generator.hpp"

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace pred::ir {

namespace {

class FunctionGen {
 public:
  /// `pool`, when non-null and non-empty, lists module function indices the
  /// generated code may call; segments then include call shapes.
  FunctionGen(Xorshift64& rng, std::string name, const GeneratorOptions& opts,
              const std::vector<std::uint32_t>* pool = nullptr)
      : rng_(rng), opts_(opts), pool_(pool),
        b_(std::move(name), /*num_args=*/2) {
    // A small pool of (offset, size) slots shared by every invariant access
    // in the function: repeats are what give the dedup and merging passes
    // something to find.
    const std::uint32_t pool_size = 3 + rng_.next_below(4);
    for (std::uint32_t i = 0; i < pool_size; ++i) {
      static constexpr std::uint32_t kSizes[] = {1, 2, 4, 8};
      const std::uint32_t size = kSizes[rng_.next_below(4)];
      std::int64_t off =
          8 * static_cast<std::int64_t>(rng_.next_below(opts_.max_offset_words));
      if (size < 8) off += size * rng_.next_below(8 / size);  // stay in-word
      slots_.push_back({off, size});
    }
  }

  Function build(std::uint32_t segments) {
    emit_access_run(opts_.accesses_per_block);
    const bool calls = pool_ != nullptr && !pool_->empty();
    for (std::uint32_t s = 0; s < segments; ++s) {
      // The call-free arm must draw exactly the RNG sequence it always has:
      // modules generated with callees == 0 stay byte-identical across the
      // introduction of the call shapes.
      if (calls) {
        switch (rng_.next_below(6)) {
          case 0:
            emit_diamond();
            break;
          case 1:
            emit_early_exit_loop();
            break;
          case 2:
            emit_call_run();
            break;
          case 3:
            emit_call_loop(/*varying=*/false);
            break;
          case 4:
            emit_call_loop(/*varying=*/true);
            break;
          default:
            emit_loop();
            break;
        }
        continue;
      }
      switch (rng_.next_below(4)) {
        case 0:
          emit_diamond();
          break;
        case 1:
          emit_early_exit_loop();
          break;
        default:
          emit_loop();
          break;
      }
    }
    // Sync shapes draw RNG only when enabled, so sync-free modules stay
    // byte-identical across the introduction of the intrinsics (the same
    // contract the call shapes honor above).
    if (opts_.sync_segments > 0) {
      const std::uint32_t syncs = 1 + rng_.next_below(opts_.sync_segments);
      for (std::uint32_t s = 0; s < syncs; ++s) {
        switch (rng_.next_below(3)) {
          case 0:
            emit_sync_bracket();
            break;
          case 1:
            emit_handoff_run(/*interior_sync=*/false);
            break;
          default:
            emit_handoff_run(/*interior_sync=*/true);
            break;
        }
      }
    }
    if (opts_.allow_intrinsics && rng_.next_below(2) == 0) {
      const Reg len =
          b_.const_val(8 * (1 + static_cast<std::int64_t>(rng_.next_below(3))));
      b_.mem_set(buf(), len, static_cast<std::uint8_t>(rng_.next_below(256)));
    }
    b_.ret(b_.const_val(0));
    return b_.take();
  }

 private:
  struct Slot {
    std::int64_t offset;
    std::uint32_t size;
  };

  Reg buf() const { return b_.arg(0); }
  Reg bound() const { return b_.arg(1); }

  /// One access at a pooled invariant address, through a randomly chosen
  /// addressing idiom. All three idioms compute the identical address, so
  /// value numbering must treat them as one.
  void emit_invariant_access() {
    const Slot slot = slots_[rng_.next_below(slots_.size())];
    Reg base = buf();
    std::int64_t off = slot.offset;
    switch (rng_.next_below(3)) {
      case 0:  // direct: [buf + off]
        break;
      case 1: {  // aliased register: t = buf; [t + off]
        const Reg t = b_.fresh_reg();
        b_.move(t, base);
        base = t;
        break;
      }
      default: {  // offset split into the register: t = buf + k; [t + off-k]
        const std::int64_t k =
            off > 0 ? static_cast<std::int64_t>(
                          rng_.next_below(static_cast<std::uint64_t>(off) + 1))
                    : 0;
        base = b_.add(base, b_.const_val(k));
        off -= k;
        break;
      }
    }
    if (rng_.next_below(2) == 0) {
      b_.store(base, b_.const_val(static_cast<std::int64_t>(rng_.next_below(64))),
               off, slot.size);
    } else {
      b_.load(base, off, slot.size);
    }
  }

  /// One access whose address depends on the induction variable — never
  /// hoistable, keeps the pruned loops honest.
  void emit_varying_access(Reg i) {
    const Reg scaled = b_.mul(i, b_.const_val(8));
    const Reg addr = b_.add(buf(), scaled);
    const std::int64_t off = 8 * static_cast<std::int64_t>(rng_.next_below(2));
    if (rng_.next_below(2) == 0) {
      b_.store(addr, b_.const_val(static_cast<std::int64_t>(rng_.next_below(64))),
               off, 8);
    } else {
      b_.load(addr, off, 8);
    }
  }

  void emit_access_run(std::uint32_t count, Reg i = kNoReg) {
    for (std::uint32_t a = 0; a < count; ++a) {
      if (i != kNoReg && rng_.next_below(4) == 0) {
        emit_varying_access(i);
      } else {
        emit_invariant_access();
      }
    }
  }

  /// Acquire/release bracket around an ordinary access run: the epochs
  /// rotate but no ownership transfers, so sync-scoped pruning must leave
  /// every access alone.
  void emit_sync_bracket() {
    b_.acquire();
    emit_access_run(opts_.accesses_per_block);
    b_.release();
  }

  /// Handoff of a constant-length prefix of buf followed by a write-first
  /// access run provably inside the transferred range — the exact shape
  /// sync-scoped pruning elides. With `interior_sync` a mid-run acquire
  /// closes the held range, so accesses after it must stay instrumented.
  void emit_handoff_run(bool interior_sync) {
    const std::uint32_t words = 2 + rng_.next_below(4);  // 2..5 words
    const Reg len = b_.const_val(8 * static_cast<std::int64_t>(words));
    b_.handoff(buf(), len);
    const std::uint32_t accesses = 2 + rng_.next_below(4);
    for (std::uint32_t i = 0; i < accesses; ++i) {
      if (interior_sync && i == accesses / 2) b_.acquire();
      const std::int64_t off =
          8 * static_cast<std::int64_t>(rng_.next_below(words));
      // Vary the addressing idiom so the pruning pass must rely on value
      // numbering, mirroring emit_invariant_access.
      Reg base = buf();
      if (rng_.next_below(3) == 0) {
        const Reg t = b_.fresh_reg();
        b_.move(t, base);
        base = t;
      }
      if (i == 0 || rng_.next_below(2) == 0) {
        b_.store(base, b_.const_val(static_cast<std::int64_t>(
                           rng_.next_below(64))),
                 off, 8);
      } else {
        b_.load(base, off, 8);
      }
    }
  }

  /// Canonical counted loop: preheader (tail of the current block), a
  /// header testing `i < n`, a single body/latch block stepping i by a
  /// constant, and an exit that becomes the new current block.
  void emit_loop() {
    const Reg i = b_.fresh_reg();
    b_.move(i, b_.const_val(0));
    const std::uint32_t header = b_.new_block();
    const std::uint32_t body = b_.new_block();
    const std::uint32_t exit = b_.new_block();
    b_.br(header);

    b_.set_block(header);
    b_.cond_br(b_.cmp_lt(i, bound()), body, exit);

    b_.set_block(body);
    emit_access_run(opts_.accesses_per_block, i);
    const Reg step =
        b_.const_val(1 + static_cast<std::int64_t>(rng_.next_below(3)));
    b_.move(i, b_.add(i, step));
    b_.br(header);

    b_.set_block(exit);
  }

  /// Counted loop whose latch is a *conditional* branch: after stepping i,
  /// the body may leave the loop early when a runtime property of i holds.
  /// The header still bounds the loop (i < n), so execution terminates, but
  /// the trip count is NOT ceil((n - i0) / step) — batching must reject this
  /// shape or it over-delivers.
  void emit_early_exit_loop() {
    const Reg i = b_.fresh_reg();
    b_.move(i, b_.const_val(0));
    const std::uint32_t header = b_.new_block();
    const std::uint32_t body = b_.new_block();
    const std::uint32_t exit = b_.new_block();
    b_.br(header);

    b_.set_block(header);
    b_.cond_br(b_.cmp_lt(i, bound()), body, exit);

    b_.set_block(body);
    emit_access_run(opts_.accesses_per_block, i);
    const Reg step =
        b_.const_val(1 + static_cast<std::int64_t>(rng_.next_below(3)));
    b_.move(i, b_.add(i, step));
    const Reg k =
        b_.const_val(3 + static_cast<std::int64_t>(rng_.next_below(4)));
    const Reg leave = b_.cmp_eq(b_.rem(i, k), b_.const_val(0));
    b_.cond_br(leave, exit, header);

    b_.set_block(exit);
  }

  /// Diamond picked by a runtime property of n (both arms are live across
  /// inputs, so pruning cannot treat either as dead).
  void emit_diamond() {
    const Reg k =
        b_.const_val(2 + static_cast<std::int64_t>(rng_.next_below(3)));
    const Reg cond = b_.cmp_eq(b_.rem(bound(), k), b_.const_val(0));
    const std::uint32_t then_bb = b_.new_block();
    const std::uint32_t else_bb = b_.new_block();
    const std::uint32_t join = b_.new_block();
    b_.cond_br(cond, then_bb, else_bb);

    b_.set_block(then_bb);
    emit_access_run(opts_.accesses_per_block);
    b_.br(join);

    b_.set_block(else_bb);
    emit_access_run(opts_.accesses_per_block);
    b_.br(join);

    b_.set_block(join);
  }

  /// One or two calls with loop-free, provably invariant arguments: the
  /// pointer is buf itself, the count a small constant or n.
  void emit_call_run() {
    const std::uint32_t count = 1 + rng_.next_below(2);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t callee =
          (*pool_)[rng_.next_below(pool_->size())];
      const Reg a0 = b_.fresh_reg();
      const Reg a1 = b_.fresh_reg();  // consecutive with a0, as kCall needs
      b_.move(a0, buf());
      if (rng_.next_below(2) == 0) {
        b_.move(a1, b_.const_val(
                        1 + static_cast<std::int64_t>(rng_.next_below(8))));
      } else {
        b_.move(a1, bound());
      }
      b_.call(callee, a0, 2);
    }
  }

  /// Canonical counted loop around a call. With `varying` false the callee
  /// gets (buf, small const) every iteration — the exact shape
  /// interprocedural batching expands through a summarizable callee. With
  /// `varying` true the pointer is buf + i*8, so the per-iteration access
  /// set moves and batching must keep its hands off.
  void emit_call_loop(bool varying) {
    const std::uint32_t callee = (*pool_)[rng_.next_below(pool_->size())];
    const Reg i = b_.fresh_reg();
    b_.move(i, b_.const_val(0));
    const std::uint32_t header = b_.new_block();
    const std::uint32_t body = b_.new_block();
    const std::uint32_t exit = b_.new_block();
    b_.br(header);

    b_.set_block(header);
    b_.cond_br(b_.cmp_lt(i, bound()), body, exit);

    b_.set_block(body);
    if (rng_.next_below(2) == 0) emit_invariant_access();
    const Reg a0 = b_.fresh_reg();
    const Reg a1 = b_.fresh_reg();
    if (varying) {
      const Reg scaled = b_.mul(i, b_.const_val(8));
      b_.move(a0, b_.add(buf(), scaled));
      b_.move(a1, b_.const_val(
                      1 + static_cast<std::int64_t>(rng_.next_below(4))));
    } else {
      b_.move(a0, buf());
      b_.move(a1, b_.const_val(
                      1 + static_cast<std::int64_t>(rng_.next_below(8))));
    }
    b_.call(callee, a0, 2);
    b_.move(i, b_.add(i, b_.const_val(1)));
    b_.br(header);

    b_.set_block(exit);
  }

  static constexpr Reg kNoReg = 0xffffffffu;

  Xorshift64& rng_;
  const GeneratorOptions& opts_;
  const std::vector<std::uint32_t>* pool_;
  FunctionBuilder b_;
  std::vector<Slot> slots_;
};

std::int64_t random_word_offset(Xorshift64& rng,
                                const GeneratorOptions& opts) {
  return 8 * static_cast<std::int64_t>(rng.next_below(opts.max_offset_words));
}

/// Constant-bound loop leaf: the whole control flow is decided by constants,
/// so the summarizer unrolls it and stays exact — including the access whose
/// address varies with the (constant-valued) induction variable.
Function make_const_loop_leaf(Xorshift64& rng, std::string name,
                              const GeneratorOptions& opts) {
  FunctionBuilder b(std::move(name), /*num_args=*/2);
  const std::int64_t off = random_word_offset(rng, opts);
  const Reg i = b.fresh_reg();
  b.move(i, b.const_val(0));
  const Reg k =
      b.const_val(2 + static_cast<std::int64_t>(rng.next_below(4)));
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t exit = b.new_block();
  b.br(header);

  b.set_block(header);
  b.cond_br(b.cmp_lt(i, k), body, exit);

  b.set_block(body);
  b.store(b.arg(0), b.const_val(7), off, 8);
  const Reg scaled = b.mul(i, b.const_val(8));
  b.load(b.add(b.arg(0), scaled), 0, 8);
  b.move(i, b.add(i, b.const_val(1)));
  b.br(header);

  b.set_block(exit);
  b.load(b.arg(0), off, 8);
  b.ret(b.const_val(0));
  return b.take();
}

/// Data-dependent leaf: the store's address hinges on n, which no caller
/// context can make constant — summarization must bail to ⊤.
Function make_data_dep_leaf(Xorshift64& rng, std::string name) {
  FunctionBuilder b(std::move(name), /*num_args=*/2);
  const Reg m = b.rem(b.arg(1), b.const_val(4));
  const Reg scaled = b.mul(m, b.const_val(8));
  b.store(b.add(b.arg(0), scaled),
          b.const_val(static_cast<std::int64_t>(rng.next_below(64))), 0, 8);
  b.load(b.arg(0), 0, 8);
  b.ret(b.const_val(0));
  return b.take();
}

/// Intrinsic leaf: an instrumented memset delivers a length-dependent range
/// of accesses — ⊤ by definition.
Function make_intrinsic_leaf(Xorshift64& rng, std::string name) {
  FunctionBuilder b(std::move(name), /*num_args=*/2);
  const Reg len = b.const_val(
      16 + 8 * static_cast<std::int64_t>(rng.next_below(3)));
  b.mem_set(b.arg(0), len, static_cast<std::uint8_t>(rng.next_below(256)));
  b.ret(b.const_val(0));
  return b.take();
}

/// Self-recursive leaf (⊤ by cycle membership). The recursion depth is
/// folded through n % 9 up front, so even a caller passing large n keeps
/// the call stack within the interpreter's depth limit.
Function make_recursive_leaf(Xorshift64& rng, std::string name,
                             std::uint32_t self,
                             const GeneratorOptions& opts) {
  FunctionBuilder b(std::move(name), /*num_args=*/2);
  const std::int64_t off = random_word_offset(rng, opts);
  const Reg k = b.rem(b.arg(1), b.const_val(9));
  b.store(b.arg(0), b.const_val(5), off, 8);
  const std::uint32_t rec = b.new_block();
  const std::uint32_t base = b.new_block();
  b.cond_br(b.cmp_lt(k, b.const_val(1)), base, rec);

  b.set_block(rec);
  const Reg a0 = b.fresh_reg();
  const Reg a1 = b.fresh_reg();
  b.move(a0, b.arg(0));
  b.move(a1, b.sub(k, b.const_val(1)));
  b.call(self, a0, 2);
  b.ret(b.const_val(0));

  b.set_block(base);
  b.ret(b.const_val(0));
  return b.take();
}

/// First half of a mutually recursive pair: calls its partner with n - 1
/// when n >= 1.
Function make_mutual_a(Xorshift64& rng, std::string name,
                       std::uint32_t partner, const GeneratorOptions& opts) {
  FunctionBuilder b(std::move(name), /*num_args=*/2);
  const std::int64_t off = random_word_offset(rng, opts);
  b.load(b.arg(0), off, 8);
  const std::uint32_t rec = b.new_block();
  const std::uint32_t done = b.new_block();
  b.cond_br(b.cmp_lt(b.arg(1), b.const_val(1)), done, rec);

  b.set_block(rec);
  const Reg a0 = b.fresh_reg();
  const Reg a1 = b.fresh_reg();
  b.move(a0, b.arg(0));
  b.move(a1, b.sub(b.arg(1), b.const_val(1)));
  b.call(partner, a0, 2);
  b.ret(b.const_val(0));

  b.set_block(done);
  b.ret(b.const_val(0));
  return b.take();
}

/// Second half: bounces back to the first with (n % 5) - 1, so the mutual
/// chain shrinks fast and terminates for every n.
Function make_mutual_b(Xorshift64& rng, std::string name,
                       std::uint32_t partner, const GeneratorOptions& opts) {
  FunctionBuilder b(std::move(name), /*num_args=*/2);
  const std::int64_t off = random_word_offset(rng, opts);
  const Reg k = b.rem(b.arg(1), b.const_val(5));
  b.store(b.arg(0), b.const_val(3), off, 8);
  const std::uint32_t rec = b.new_block();
  const std::uint32_t done = b.new_block();
  b.cond_br(b.cmp_lt(k, b.const_val(1)), done, rec);

  b.set_block(rec);
  const Reg a0 = b.fresh_reg();
  const Reg a1 = b.fresh_reg();
  b.move(a0, b.arg(0));
  b.move(a1, b.sub(k, b.const_val(1)));
  b.call(partner, a0, 2);
  b.ret(b.const_val(0));

  b.set_block(done);
  b.ret(b.const_val(0));
  return b.take();
}

/// Planted false-sharing slot function (see GeneratorOptions): thread t's
/// kernel. Every access is a provably constant offset from buf inside slot
/// t, expressed through the same varied addressing idioms the fuzz modules
/// use elsewhere — direct, aliased register, offset split across an add and
/// the immediate — so the repair rewrite must rely on value numbering, not
/// syntax. Deliberately draws no RNG.
Function make_planted_slot(std::string name, std::uint32_t t,
                           const GeneratorOptions& opts) {
  FunctionBuilder b(std::move(name), /*num_args=*/2);
  const std::int64_t slot_start =
      8 * static_cast<std::int64_t>(opts.planted_base_words) +
      static_cast<std::int64_t>(t) *
          static_cast<std::int64_t>(opts.planted_stride);
  const std::uint32_t words = opts.planted_stride < 8
                                  ? 1
                                  : opts.planted_stride / 8;

  const Reg sum = b.fresh_reg();
  b.move(sum, b.const_val(0));
  const Reg i = b.fresh_reg();
  b.move(i, b.const_val(0));
  const Reg k =
      b.const_val(static_cast<std::int64_t>(opts.planted_iters));
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t exit = b.new_block();
  b.br(header);

  b.set_block(header);
  b.cond_br(b.cmp_lt(i, k), body, exit);

  b.set_block(body);
  if (opts.planted_handoff) {
    // Claim the whole planted region for this thread before touching it —
    // every access below lands inside the held range.
    const Reg region_len = b.const_val(
        static_cast<std::int64_t>(opts.planted_slots) *
        static_cast<std::int64_t>(opts.planted_stride));
    b.handoff(b.arg(0), region_len,
              8 * static_cast<std::int64_t>(opts.planted_base_words));
  }
  for (std::uint32_t w = 0; w < words; ++w) {
    const std::int64_t off = slot_start + 8 * static_cast<std::int64_t>(w);
    Reg addr = b.arg(0);
    std::int64_t imm = off;
    switch (w % 3) {
      case 0:  // direct: [buf + off]
        break;
      case 1: {  // aliased register: a = buf; [a + off]
        const Reg a = b.fresh_reg();
        b.move(a, addr);
        addr = a;
        break;
      }
      default: {  // split: a = buf + off/2; [a + (off - off/2)]
        const std::int64_t half = off / 2;
        addr = b.add(addr, b.const_val(half));
        imm = off - half;
        break;
      }
    }
    const Reg v = b.load(addr, imm, 8);
    b.store(addr, b.add(v, b.const_val(1)), imm, 8);
    b.move(sum, b.add(sum, v));
  }
  b.move(i, b.add(i, b.const_val(1)));
  b.br(header);

  b.set_block(exit);
  b.ret(sum);
  return b.take();
}

}  // namespace

Module generate_module(std::uint64_t seed, const GeneratorOptions& opts) {
  Xorshift64 rng(seed ^ 0xd1b54a32d192ed03ull);
  Module m;
  std::vector<std::uint32_t> pool;
  if (opts.callees > 0) {
    GeneratorOptions leaf_opts = opts;
    leaf_opts.allow_intrinsics = false;  // leaves get intrinsics explicitly
    std::uint32_t c = 0;
    while (c < opts.callees) {
      const auto idx = static_cast<std::uint32_t>(m.functions.size());
      const std::string name = "callee" + std::to_string(c);
      switch (opts.summarizable_callees ? rng.next_below(2)
                                        : rng.next_below(6)) {
        case 0: {
          FunctionGen gen(rng, name, leaf_opts);
          m.functions.push_back(gen.build(0));
          break;
        }
        case 1:
          m.functions.push_back(make_const_loop_leaf(rng, name, leaf_opts));
          break;
        case 2:
          m.functions.push_back(make_data_dep_leaf(rng, name));
          break;
        case 3:
          m.functions.push_back(make_recursive_leaf(rng, name, idx,
                                                    leaf_opts));
          break;
        case 4:
          if (c + 1 < opts.callees) {
            m.functions.push_back(make_mutual_a(rng, name, idx + 1,
                                                leaf_opts));
            pool.push_back(idx);
            ++c;
            m.functions.push_back(make_mutual_b(
                rng, "callee" + std::to_string(c), idx, leaf_opts));
            pool.push_back(idx + 1);
            ++c;
            continue;
          }
          m.functions.push_back(make_intrinsic_leaf(rng, name));
          break;
        default:
          m.functions.push_back(make_intrinsic_leaf(rng, name));
          break;
      }
      pool.push_back(idx);
      ++c;
    }
  }
  const std::uint32_t functions = 1 + static_cast<std::uint32_t>(
                                          rng.next_below(2));
  for (std::uint32_t f = 0; f < functions; ++f) {
    const std::string name = f == 0 ? "gen_main" : "gen_aux";
    const std::uint32_t segments =
        f == 0 ? opts.segments : 1 + static_cast<std::uint32_t>(
                                         rng.next_below(2));
    FunctionGen gen(rng, name, opts, pool.empty() ? nullptr : &pool);
    m.functions.push_back(gen.build(segments));
  }
  for (std::uint32_t t = 0; t < opts.planted_slots; ++t) {
    m.functions.push_back(
        make_planted_slot("slot" + std::to_string(t), t, opts));
  }
  const std::string err = verify(m);
  PRED_CHECK(err.empty());
  return m;
}

}  // namespace pred::ir
