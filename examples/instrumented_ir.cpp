// Compiler-pipeline demo: the mini-IR path.
//
// This is the analogue of the paper's LLVM integration (Section 2.2): a
// program is expressed in IR, the instrumentation pass decides which loads
// and stores get runtime calls (once per address & access type per basic
// block — Section 2.4.2), and the interpreter "runs the compiled binary"
// with those calls feeding the PREDATOR runtime. Two logical threads update
// neighboring array slots; the detector reports the false sharing with the
// object's allocation site.
//
// Build & run:  ./build/examples/instrumented_ir
#include <cstdio>

#include "instrument/interp.hpp"
#include "instrument/pass.hpp"

using namespace pred;
using namespace pred::ir;

namespace {

// void hammer(long* slot, long n) { for (i=0;i<n;i++) { *slot = *slot + i } }
Function build_hammer() {
  FunctionBuilder b("hammer", /*num_args=*/2);
  const Reg slot = b.arg(0);
  const Reg n = b.arg(1);
  const Reg i = b.fresh_reg();
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t done = b.new_block();
  b.br(header);
  b.set_block(header);
  b.cond_br(b.cmp_lt(i, n), body, done);
  b.set_block(body);
  const Reg v = b.load(slot);
  const Reg v2 = b.add(v, i);
  b.store(slot, v2);
  // A second, redundant load of the same address in the same block: the
  // selective pass will instrument it only once.
  const Reg again = b.load(slot);
  (void)again;
  const Reg i2 = b.add(i, b.const_val(1));
  b.move(i, i2);
  b.br(header);
  b.set_block(done);
  b.ret(i);
  return b.take();
}

}  // namespace

int main() {
  Module module;
  module.functions.push_back(build_hammer());

  const PassStats stats = run_instrumentation_pass(module, {});
  std::printf("instrumentation pass: %llu candidate accesses, "
              "%llu instrumented, %llu duplicates elided per block\n\n",
              static_cast<unsigned long long>(stats.candidate_accesses),
              static_cast<unsigned long long>(stats.instrumented_accesses),
              static_cast<unsigned long long>(stats.skipped_duplicates));

  SessionOptions opts;
  opts.heap_size = 16 * 1024 * 1024;
  Session session(opts);
  auto* array = static_cast<long*>(
      session.alloc(2 * sizeof(long), session.intern_frames({"ir_demo.c:shared_array"})));
  array[0] = array[1] = 0;

  Interpreter interp(&session);
  const Function* hammer = module.find("hammer");
  // Alternate short bursts of the two logical threads so their accesses
  // interleave the way they would on two real cores.
  for (int round = 0; round < 2000; ++round) {
    for (ThreadId tid = 0; tid < 2; ++tid) {
      const std::int64_t args[] = {
          static_cast<std::int64_t>(
              reinterpret_cast<std::intptr_t>(&array[tid])),
          25};
      interp.run(*hammer, args, tid);
    }
  }

  std::printf("%s", session.report_text().c_str());
  return 0;
}
