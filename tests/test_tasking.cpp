// Tests for the fiber pool and for PREDATOR's threading-library
// independence (Section 6): false sharing between cooperative fibers on ONE
// OS thread is detected exactly like kernel-thread false sharing, because
// detection consumes logical thread ids, not pthreads.
#include <gtest/gtest.h>

#include <cstring>

#include "api/predator.hpp"
#include "sim/fiber_executor.hpp"
#include "sim/numa_cache_sim.hpp"
#include "tasking/fiber_pool.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

TEST(FiberPool, RunsAllFibersToCompletion) {
  FiberPool pool;
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    pool.spawn([&done] { ++done; });
  }
  pool.run();
  EXPECT_EQ(done, 5);
}

TEST(FiberPool, YieldInterleavesRoundRobin) {
  FiberPool pool;
  std::vector<int> order;
  for (int f = 0; f < 3; ++f) {
    pool.spawn([&order, f] {
      for (int step = 0; step < 3; ++step) {
        order.push_back(f);
        FiberPool::yield();
      }
    });
  }
  pool.run();
  // Perfect round robin: 0 1 2 0 1 2 0 1 2.
  ASSERT_EQ(order.size(), 9u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i % 3));
  }
}

TEST(FiberPool, CurrentFiberIdentity) {
  FiberPool pool;
  std::vector<std::size_t> seen;
  for (int f = 0; f < 4; ++f) {
    pool.spawn([&seen] { seen.push_back(FiberPool::current_fiber()); });
  }
  EXPECT_EQ(FiberPool::current_fiber(), static_cast<std::size_t>(-1));
  pool.run();
  ASSERT_EQ(seen.size(), 4u);
  for (std::size_t f = 0; f < 4; ++f) EXPECT_EQ(seen[f], f);
}

TEST(FiberPool, YieldOutsidePoolIsNoOp) {
  FiberPool::yield();  // must not crash
}

TEST(FiberPool, FibersKeepPrivateStacks) {
  FiberPool pool;
  long results[2] = {0, 0};
  for (int f = 0; f < 2; ++f) {
    pool.spawn([&results, f] {
      long local = f + 1;  // stack variable must survive yields
      for (int i = 0; i < 100; ++i) {
        local += f + 1;
        FiberPool::yield();
      }
      results[f] = local;
    });
  }
  pool.run();
  EXPECT_EQ(results[0], 101);
  EXPECT_EQ(results[1], 202);
}

TEST(FiberPool, SeededScheduleIsAFrozenFunctionOfTheSeed) {
  // Pins the scheduler's xorshift64 stream: if the RNG or the pick rule
  // changes, every "deterministic" big-machine interleaving silently
  // reorders — this regression makes that a loud failure instead.
  auto run_with_seed = [](std::uint64_t seed) {
    FiberPool pool;
    for (int f = 0; f < 4; ++f) {
      pool.spawn([] {
        for (int step = 0; step < 20; ++step) FiberPool::yield();
      });
    }
    pool.run_seeded(seed);
    return pool.schedule();
  };

  const auto schedule = run_with_seed(1);
  // First picks of xorshift64(state=1) mod 4 runnable fibers.
  const std::size_t expected_prefix[] = {1, 1, 1, 1, 1, 1, 1, 1, 3, 2, 0, 1};
  ASSERT_GE(schedule.size(), std::size(expected_prefix));
  for (std::size_t i = 0; i < std::size(expected_prefix); ++i) {
    EXPECT_EQ(schedule[i], expected_prefix[i]) << "resume " << i;
  }

  EXPECT_EQ(schedule, run_with_seed(1));   // same seed, same schedule
  EXPECT_NE(schedule, run_with_seed(2));   // different seed, different order
}

TEST(FiberPool, SeededRunCompletesEveryFiber) {
  FiberPool pool;
  int done = 0;
  for (int i = 0; i < 7; ++i) {
    pool.spawn([&done] {
      FiberPool::yield();
      ++done;
    });
  }
  pool.run_seeded(99);
  EXPECT_EQ(done, 7);
}

TEST(FiberBigMachine, PingPong256FibersIsByteIdenticalAcrossRuns) {
  // The ISSUE's determinism regression: a 256-fiber interleaving of
  // numa_pingpong on a 4x64 topology, replayed twice, yields byte-identical
  // SimStats (and the same per-core critical path).
  const wl::Workload* w = wl::find_workload("numa_pingpong");
  ASSERT_NE(w, nullptr);
  SessionOptions opts;
  opts.heap_size = 32 * 1024 * 1024;
  Session session(opts);
  wl::Params p;
  p.threads = 256;
  const auto traces = w->capture(session, p);
  ASSERT_EQ(traces.size(), 256u);

  NumaConfig cfg;
  cfg.sockets = 4;
  cfg.cores_per_socket = 64;
  cfg.placement = NumaPlacement::kScatter;
  NumaCacheSim run1(cfg), run2(cfg);
  const NumaStats s1 = simulate_fibers(run1, traces, 0xfeedu);
  const NumaStats s2 = simulate_fibers(run2, traces, 0xfeedu);

  EXPECT_EQ(0, std::memcmp(&s1, &s2, sizeof(NumaStats)));
  EXPECT_EQ(run1.max_core_cycles(), run2.max_core_cycles());
  for (std::uint32_t c = 0; c < cfg.total_cores(); ++c) {
    ASSERT_EQ(run1.core_cycles(c), run2.core_cycles(c)) << "core " << c;
  }
  // The packed slots really do ping-pong across sockets at this scale.
  EXPECT_GT(s1.remote_invalidations_sent, 0u);
  EXPECT_GT(s1.coherence_misses, 0u);
}

TEST(FiberDetection, FalseSharingBetweenFibersIsDetected) {
  SessionOptions opts;
  opts.heap_size = 8 * 1024 * 1024;
  opts.runtime.tracking_threshold = 2;
  opts.runtime.report_invalidation_threshold = 50;
  Session session(opts);
  auto* slots =
      static_cast<long*>(session.alloc(64, session.intern_frames({"fiber_app.cpp:slots"})));
  ASSERT_NE(slots, nullptr);

  FiberPool pool;
  for (std::size_t f = 0; f < 2; ++f) {
    pool.spawn([&session, slots, f] {
      const auto tid = static_cast<ThreadId>(FiberPool::current_fiber());
      for (int i = 0; i < 300; ++i) {
        session.record(&slots[f], AccessType::kRead, tid, 8);
        slots[f] += 1;
        session.record(&slots[f], AccessType::kWrite, tid, 8);
        FiberPool::yield();  // cooperative interleaving
      }
    });
  }
  pool.run();

  const Report rep = session.report();
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].kind, SharingKind::kFalseSharing);
  EXPECT_GT(rep.findings[0].invalidations, 100u);
}

TEST(FiberDetection, SingleFiberNeverFalseShares) {
  SessionOptions opts;
  opts.heap_size = 8 * 1024 * 1024;
  opts.runtime.tracking_threshold = 2;
  Session session(opts);
  auto* slots = static_cast<long*>(
      session.alloc(64, session.intern_frames({"fiber_app.cpp:one"})));
  FiberPool pool;
  pool.spawn([&session, slots] {
    for (int i = 0; i < 500; ++i) {
      session.record(&slots[i % 8], AccessType::kWrite,
                     static_cast<ThreadId>(FiberPool::current_fiber()), 8);
    }
  });
  pool.run();
  EXPECT_EQ(session.report().total_invalidations, 0u);
}

}  // namespace
}  // namespace pred
