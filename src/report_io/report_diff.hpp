// Report diffing: compare two detection reports — typically before and
// after a fix, or across two revisions in CI — matching findings by their
// stable identity (allocation callsite or global name, not addresses, which
// change run to run). Classifies each finding as fixed, new, improved,
// regressed, or unchanged, with the invalidation deltas.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/callsite.hpp"
#include "runtime/report.hpp"

namespace pred {

enum class DiffStatus : std::uint8_t {
  kFixed,      ///< present before, gone after
  kNew,        ///< absent before, present after
  kImproved,   ///< impact dropped by more than the noise band
  kRegressed,  ///< impact grew by more than the noise band
  kUnchanged,
};

const char* to_string(DiffStatus status);

struct FindingDiff {
  std::string identity;  ///< callsite frames joined, or global name
  DiffStatus status = DiffStatus::kUnchanged;
  SharingKind kind = SharingKind::kNone;
  std::uint64_t impact_before = 0;
  std::uint64_t impact_after = 0;
  bool was_observed = false;
  bool now_observed = false;
};

struct ReportDiff {
  std::vector<FindingDiff> entries;  ///< ordered: regressions/new first
  std::size_t fixed = 0;
  std::size_t fresh = 0;
  std::size_t regressed = 0;

  bool clean() const { return fresh == 0 && regressed == 0; }
};

struct DiffOptions {
  /// Relative impact change below this fraction counts as unchanged
  /// (sampling and interleaving jitter).
  double noise_fraction = 0.25;
  /// Only false-sharing findings participate by default.
  bool include_true_sharing = false;
};

/// The identity key used for matching (exposed for tests).
std::string finding_identity(const ObjectFinding& finding,
                             const CallsiteTable& callsites);

ReportDiff diff_reports(const Report& before, const CallsiteTable& cs_before,
                        const Report& after, const CallsiteTable& cs_after,
                        const DiffOptions& options = {});

std::string format_diff(const ReportDiff& diff);

}  // namespace pred
