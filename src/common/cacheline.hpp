// Cache-line geometry shared by every PREDATOR subsystem.
//
// PREDATOR analyzes memory accesses at three granularities: bytes (the raw
// access), words (the unit of the per-line access histogram used to separate
// false from true sharing, Section 2.3.2 of the paper), and cache lines (the
// unit of invalidation tracking, Section 2.3.1).
#pragma once

#include <cstddef>
#include <cstdint>

namespace pred {

/// Byte address inside the tracked region. We use a plain integer rather than
/// a pointer so that synthetic traces and simulator runs can use the same
/// machinery as live instrumented runs.
using Address = std::uintptr_t;

/// Dense small integer identifying a thread. Thread 0 is reserved for the
/// main thread; the runtime hands these out in registration order so reports
/// are stable across runs.
using ThreadId = std::uint32_t;

inline constexpr ThreadId kInvalidThread = ~ThreadId{0};

/// Read/write tag attached to every instrumented access (the second argument
/// of the paper's HandleAccess, Figure 1).
enum class AccessType : std::uint8_t { kRead = 0, kWrite = 1 };

inline constexpr bool is_write(AccessType t) { return t == AccessType::kWrite; }

/// Geometry of the physical cache line being modeled. The paper's test
/// machine uses 64-byte lines; prediction doubles this (Section 3.3).
struct LineGeometry {
  std::size_t line_size = 64;    ///< bytes per physical cache line
  std::size_t word_size = 8;     ///< bytes per word of the access histogram

  constexpr std::size_t words_per_line() const { return line_size / word_size; }
  constexpr std::size_t line_index(Address a) const { return a / line_size; }
  constexpr Address line_base(Address a) const { return a - (a % line_size); }
  constexpr std::size_t word_in_line(Address a) const {
    return (a % line_size) / word_size;
  }
  constexpr std::size_t word_index(Address a) const { return a / word_size; }
};

inline constexpr LineGeometry kDefaultGeometry{};

/// Alignment/padding unit for the *host* machine's cache lines (as opposed
/// to LineGeometry, which describes the *modeled* line). Runtime data
/// structures that different threads update concurrently — CacheTracker,
/// its sampling stripes — are padded to this so the detector's own metadata
/// never falsely shares.
inline constexpr std::size_t kCacheLineSize = 64;

/// Rounds `n` up to a multiple of `align` (align need not be a power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return ((n + align - 1) / align) * align;
}

}  // namespace pred
