// Hot-access extraction and hot-pair search (Section 3.3).
//
// A *hot access* on line L is a word whose access count exceeds the average
// per-word access count of L. Prediction looks for a pair (X, Y) with X hot
// in L and Y hot (by L's average) in an adjacent line such that:
//   (1) X and Y can land on the same virtual line,
//   (2) at least one of them is written,
//   (3) they are touched by different threads,
// and the invalidations the pair could cause under the paper's conservative
// interleaved-schedule assumption exceed L's per-word average access count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cacheline.hpp"
#include "runtime/word_access.hpp"

namespace pred {

/// One hot word, with its absolute address restored.
struct HotWord {
  Address address = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  ThreadId owner = kInvalidThread;
  bool shared = false;

  std::uint64_t total() const { return reads + writes; }
};

/// A candidate pair straddling a line boundary.
struct HotPair {
  HotWord x;  ///< the lower-addressed word
  HotWord y;  ///< the higher-addressed word
  std::uint64_t estimated_invalidations = 0;
};

/// Average sampled accesses per word of a line: the hotness bar.
std::uint64_t average_word_accesses(const std::vector<WordAccess>& words,
                                    std::size_t words_per_line);

/// Words of `words` (a line starting at `line_start`) hotter than
/// `threshold`.
std::vector<HotWord> hot_words(const std::vector<WordAccess>& words,
                               Address line_start, const LineGeometry& geo,
                               std::uint64_t threshold);

/// True when the two words satisfy the paper's write + different-thread
/// conditions ((2) and (3) above). Shared words count as "different thread"
/// against any owner because a shared word is touched by >= 2 threads.
bool pair_eligible(const HotWord& a, const HotWord& b);

/// Invalidations (X, Y) could cause under conservative interleaving: each
/// write of one word can follow an access of the other, so the estimate is
/// min(writes_x, acc_y) + min(writes_y, acc_x).
std::uint64_t estimate_pair_invalidations(const HotWord& x, const HotWord& y);

/// Full pair search between a line's hot words and an adjacent line's hot
/// words; returns pairs passing eligibility with their estimates (the caller
/// applies the acceptance threshold).
std::vector<HotPair> find_hot_pairs(const std::vector<HotWord>& line_words,
                                    const std::vector<HotWord>& adj_words);

}  // namespace pred
