# Empty dependencies file for ir_from_text.
# This may be replaced when dependencies are built.
