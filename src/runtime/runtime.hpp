// The PREDATOR runtime: the component every instrumented access funnels into
// (Figure 1 of the paper). Owns the shadow spaces, the object registry, the
// callsite table, and — when prediction is enabled — the virtual cache lines
// nominated by the prediction engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/cacheline.hpp"
#include "runtime/callsite.hpp"
#include "runtime/config.hpp"
#include "runtime/object_registry.hpp"
#include "runtime/shadow.hpp"

namespace pred {

class Runtime {
 public:
  /// Upper bound on simultaneously tracked regions (the allocator heap plus
  /// a handful of global segments).
  static constexpr std::size_t kMaxRegions = 16;

  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- region management ---

  /// Starts tracking [base, base+size). Returns the region, which remains
  /// owned by the runtime. The base is rounded down to a line boundary.
  ShadowSpace* register_region(Address base, std::size_t size);

  /// Region containing `addr`, or nullptr when the address is untracked.
  ShadowSpace* find_region(Address addr) const;

  // --- the hot path (Figure 1) ---

  /// Records one memory access of `size` bytes issued by thread `tid`.
  /// Accesses that straddle a word boundary are split so the word histogram
  /// stays exact; accesses to untracked memory are ignored.
  void handle_access(Address addr, AccessType type, ThreadId tid,
                     std::size_t size = 8);

  // --- threads ---

  /// Hands out dense thread ids in registration order.
  ThreadId register_thread();
  std::uint32_t thread_count() const {
    return next_thread_.load(std::memory_order_relaxed);
  }

  // --- prediction plumbing ---

  /// Callback invoked (once per line) when a line's write count crosses
  /// PredictionThreshold: step 3 of the Section 3.2 workflow. Installed by
  /// the prediction engine; the runtime stays ignorant of the analysis.
  using PredictionHook =
      std::function<void(Runtime&, ShadowSpace&, std::size_t line_index)>;
  void set_prediction_hook(PredictionHook hook) { hook_ = std::move(hook); }

  /// Creates a virtual line tracker, registers it with every physical line
  /// it overlaps (so subsequent sampled accesses feed it), and retains
  /// ownership. Returns the tracker for inspection.
  VirtualLineTracker* add_virtual_line(ShadowSpace& region, Address start,
                                       std::size_t size,
                                       VirtualLineTracker::Kind kind,
                                       std::size_t origin_line, Address hot_x,
                                       Address hot_y);

  const std::deque<VirtualLineTracker>& virtual_lines() const {
    return virtual_lines_;
  }

  // --- shared services ---

  ObjectRegistry& objects() { return objects_; }
  const ObjectRegistry& objects() const { return objects_; }
  CallsiteTable& callsites() { return callsites_; }
  const CallsiteTable& callsites() const { return callsites_; }
  const RuntimeConfig& config() const { return config_; }

  template <typename F>
  void for_each_region(F&& fn) const {
    const std::size_t n = num_regions_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) fn(*regions_[i]);
  }

  /// Total shadow/tracker/virtual-line metadata bytes (Figure 8/9 input).
  std::size_t metadata_bytes() const;

  /// Metadata bytes excluding untouched reservation: per-line shadow slots
  /// for `used_heap_bytes` of carved heap, plus live trackers and virtual
  /// lines. This mirrors the paper's proportional-set-size measurement,
  /// which only counts pages the run actually touched.
  std::size_t touched_metadata_bytes(std::size_t used_heap_bytes) const;

 private:
  void escalate(ShadowSpace& region, std::size_t line_index);
  void handle_access_one_word(ShadowSpace& region, Address addr,
                              AccessType type, ThreadId tid);

  RuntimeConfig config_;
  std::unique_ptr<ShadowSpace> regions_[kMaxRegions];
  std::atomic<std::size_t> num_regions_{0};

  std::atomic<ThreadId> next_thread_{0};

  ObjectRegistry objects_;
  CallsiteTable callsites_;

  Spinlock vl_lock_;
  std::deque<VirtualLineTracker> virtual_lines_;  // stable addresses

  PredictionHook hook_;
};

}  // namespace pred
