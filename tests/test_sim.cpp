// Tests for the cache simulator substrate: MESI-lite state transitions,
// invalidation counting, the cost model, and the deterministic round-robin
// trace executor — including the key end-to-end property that false sharing
// costs more modeled time than a padded layout.
#include <gtest/gtest.h>

#include "sim/cache_sim.hpp"
#include "sim/executor.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;

TEST(CacheSim, ColdReadThenHits) {
  CacheSim sim;
  sim.on_access(0, 64, R);
  EXPECT_EQ(sim.stats().cold_misses, 1u);
  sim.on_access(0, 64, R);
  sim.on_access(0, 96, R);  // same line
  EXPECT_EQ(sim.stats().hits, 2u);
}

TEST(CacheSim, WriteHitAfterOwnership) {
  CacheSim sim;
  sim.on_access(0, 64, W);
  EXPECT_EQ(sim.stats().cold_misses, 1u);
  sim.on_access(0, 64, W);
  EXPECT_EQ(sim.stats().hits, 1u);
}

TEST(CacheSim, WriteInvalidatesRemoteReaders) {
  CacheSim sim;
  sim.on_access(0, 64, R);
  sim.on_access(1, 64, R);
  sim.on_access(2, 64, W);
  EXPECT_EQ(sim.stats().invalidations_sent, 2u);
}

TEST(CacheSim, ReadOfRemoteDirtyIsCoherenceMiss) {
  CacheSim sim;
  sim.on_access(0, 64, W);
  sim.on_access(1, 64, R);
  EXPECT_EQ(sim.stats().coherence_misses, 1u);
  // Both now hold it clean; the old owner can read without a miss.
  sim.on_access(0, 64, R);
  EXPECT_EQ(sim.stats().hits, 1u);
}

TEST(CacheSim, WritePingPongCountsCoherenceMissesEachTime) {
  CacheSim sim;
  sim.on_access(0, 64, W);
  for (int i = 1; i <= 100; ++i) sim.on_access(i % 2, 64, W);
  EXPECT_EQ(sim.stats().coherence_misses, 100u);
  EXPECT_EQ(sim.stats().invalidations_sent, 100u);
}

TEST(CacheSim, DistinctLinesDoNotInterfere) {
  CacheSim sim;
  sim.on_access(0, 0, W);
  sim.on_access(1, 64, W);
  sim.on_access(0, 0, W);
  sim.on_access(1, 64, W);
  EXPECT_EQ(sim.stats().coherence_misses, 0u);
  EXPECT_EQ(sim.stats().invalidations_sent, 0u);
  EXPECT_EQ(sim.stats().hits, 2u);
}

TEST(CacheSim, ReadOnlySharingIsCheap) {
  CacheSim sim;
  for (int i = 0; i < 100; ++i) {
    sim.on_access(static_cast<std::uint32_t>(i % 4), 128, R);
  }
  EXPECT_EQ(sim.stats().coherence_misses, 0u);
  EXPECT_EQ(sim.stats().invalidations_sent, 0u);
  EXPECT_EQ(sim.stats().cold_misses + sim.stats().shared_fetches, 4u);
}

TEST(CacheSim, CyclesAccrueToIssuingCore) {
  CacheSim sim;
  sim.on_access(3, 64, W);
  EXPECT_GT(sim.core_cycles(3), 0u);
  EXPECT_EQ(sim.core_cycles(0), 0u);
  EXPECT_EQ(sim.max_core_cycles(), sim.core_cycles(3));
}

TEST(CacheSim, ResetClearsEverything) {
  CacheSim sim;
  sim.on_access(0, 64, W);
  sim.on_access(1, 64, W);
  sim.reset();
  EXPECT_EQ(sim.stats().accesses, 0u);
  EXPECT_EQ(sim.max_core_cycles(), 0u);
  sim.on_access(1, 64, W);
  EXPECT_EQ(sim.stats().cold_misses, 1u);  // state forgotten
}

TEST(Executor, RoundRobinInterleavesDeterministically) {
  // Two threads ping-pong writes to one line: with quantum 1 every write
  // after the first is a coherence miss.
  ThreadTrace t0, t1;
  for (int i = 0; i < 50; ++i) {
    t0.push_back({1024, 0, W, 8});
    t1.push_back({1032, 0, W, 8});  // same line, different word
  }
  const std::vector<ThreadTrace> traces{t0, t1};
  CacheSim sim;
  const SimStats stats = simulate_interleaved(sim, traces, 1);
  EXPECT_EQ(stats.accesses, 100u);
  EXPECT_EQ(stats.coherence_misses, 99u);

  // Re-running with identical inputs gives identical results.
  CacheSim sim2;
  const SimStats stats2 = simulate_interleaved(sim2, traces, 1);
  EXPECT_EQ(stats2.coherence_misses, stats.coherence_misses);
  EXPECT_EQ(sim2.max_core_cycles(), sim.max_core_cycles());
}

TEST(Executor, CoarserQuantumReducesPingPong) {
  ThreadTrace t0, t1;
  for (int i = 0; i < 1000; ++i) {
    t0.push_back({1024, 0, W, 8});
    t1.push_back({1032, 0, W, 8});
  }
  const std::vector<ThreadTrace> traces{t0, t1};
  CacheSim fine, coarse;
  simulate_interleaved(fine, traces, 1);
  simulate_interleaved(coarse, traces, 100);
  EXPECT_GT(fine.stats().coherence_misses,
            10 * coarse.stats().coherence_misses);
}

TEST(Executor, UnevenTracesDrainCompletely) {
  ThreadTrace t0, t1;
  for (int i = 0; i < 10; ++i) t0.push_back({64, 0, R, 8});
  for (int i = 0; i < 500; ++i) t1.push_back({128, 0, R, 8});
  const std::vector<ThreadTrace> traces{t0, t1};
  CacheSim sim;
  const SimStats stats = simulate_interleaved(sim, traces, 7);
  EXPECT_EQ(stats.accesses, 510u);
}

TEST(Executor, ThreadsMapToCoresModulo) {
  SimConfig cfg;
  cfg.num_cores = 2;
  CacheSim sim(cfg);
  // Threads 0 and 2 share core 0: their "sharing" is free (same cache).
  ThreadTrace a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back({2048, 0, W, 8});
    b.push_back({2056, 0, W, 8});
  }
  std::vector<ThreadTrace> traces{a, ThreadTrace{}, b};
  const SimStats stats = simulate_interleaved(sim, traces, 1);
  EXPECT_EQ(stats.coherence_misses, 0u);
}

TEST(Executor, FalseSharingCostsMoreThanPaddedLayout) {
  // The core Figure 2 mechanism: same access count, different layout.
  auto make_traces = [](std::size_t stride) {
    std::vector<ThreadTrace> traces(4);
    for (std::size_t t = 0; t < 4; ++t) {
      for (int i = 0; i < 2000; ++i) {
        traces[t].push_back(
            {static_cast<Address>(4096 + stride * t), 0, W, 8});
      }
    }
    return traces;
  };
  CacheSim shared_sim, padded_sim;
  simulate_interleaved(shared_sim, make_traces(8), 1);   // one line
  simulate_interleaved(padded_sim, make_traces(64), 1);  // one line each
  EXPECT_GT(shared_sim.max_core_cycles(), 10 * padded_sim.max_core_cycles());
}

TEST(TraceRecorder, CapturesTypesSizesAndAddresses) {
  TraceRecorder rec;
  int x = 0;
  rec.on_read(&x, 4);
  rec.on_write(&x, 4);
  const ThreadTrace trace = rec.take();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].type, R);
  EXPECT_EQ(trace[1].type, W);
  EXPECT_EQ(trace[0].addr, reinterpret_cast<Address>(&x));
  EXPECT_EQ(trace[0].size, 4u);
}

}  // namespace
}  // namespace pred
