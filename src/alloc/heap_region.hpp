// Fixed-extent heap backing store (Section 2.3.2, "Custom Memory
// Allocation"): PREDATOR's heap lives in one contiguous reservation with a
// known base so shadow metadata is reachable by address arithmetic. Spans
// are carved with a lock-free bump pointer; fine-grained recycling happens
// in the per-thread heaps layered above.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/cacheline.hpp"

namespace pred {

class HeapRegion {
 public:
  /// Reserves `size` bytes of anonymous memory (default 256 MB). The mapping
  /// is lazily committed by the OS, so large reservations are cheap until
  /// touched.
  explicit HeapRegion(std::size_t size = 256 * 1024 * 1024,
                      std::size_t line_size = 64);
  ~HeapRegion();

  HeapRegion(const HeapRegion&) = delete;
  HeapRegion& operator=(const HeapRegion&) = delete;

  Address base() const { return base_; }
  std::size_t size() const { return size_; }
  bool contains(Address a) const { return a >= base_ && a < base_ + size_; }

  /// Carves a line-aligned span of at least `bytes` bytes. Returns 0 when
  /// the region is exhausted.
  Address allocate_span(std::size_t bytes);

  /// Bytes handed out so far (upper bound on live heap data).
  std::size_t used_bytes() const {
    return cursor_.load(std::memory_order_relaxed);
  }

 private:
  Address base_ = 0;
  std::size_t size_ = 0;
  std::size_t line_size_ = 64;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace pred
