// PARSEC ferret (modeled): no false sharing, but like bodytrack it tracks
// heavily in Figure 7 — similarity search hammers per-thread feature
// accumulators far past the tracking threshold.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class FerretLike final : public WorkloadImpl<FerretLike> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "ferret", .suite = "parsec", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t queries = 300 * p.scale;
    constexpr std::uint64_t kFeatures = 48;

    // Shared read-only feature database.
    constexpr std::uint64_t kDbRows = 64;
    auto* db = static_cast<std::int64_t*>(
        h.alloc(kDbRows * kFeatures * 8, {"ferret/emd.c:db"}));
    PRED_CHECK(db != nullptr);
    Xorshift64 rng(p.seed);
    for (std::uint64_t i = 0; i < kDbRows * kFeatures; ++i) {
      db[i] = static_cast<std::int64_t>(rng.next_below(256));
    }

    std::vector<std::int64_t*> accum(n);
    for (std::uint32_t t = 0; t < n; ++t) {
      accum[t] = static_cast<std::int64_t*>(
          h.alloc(kFeatures * 8 + 64, {"ferret/emd.c:accum"}));
      PRED_CHECK(accum[t] != nullptr);
      for (std::uint64_t i = 0; i < kFeatures; ++i) accum[t][i] = 0;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      Xorshift64 local(p.seed + 31 * t);
      for (std::uint64_t q = 0; q < queries; ++q) {
        const std::uint64_t row = local.next_below(kDbRows);
        for (std::uint64_t f = 0; f < kFeatures; ++f) {
          sink.read(&db[row * kFeatures + f], 8);
          sink.read(&accum[t][f], 8);
          accum[t][f] += db[row * kFeatures + f];
          sink.write(&accum[t][f], 8);
        }
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (std::uint64_t f = 0; f < kFeatures; ++f) {
        r.checksum += static_cast<std::uint64_t>(accum[t][f]);
      }
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_ferret_like() {
  return std::make_unique<FerretLike>();
}

}  // namespace pred::wl
