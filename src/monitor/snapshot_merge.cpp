#include "monitor/snapshot_merge.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

namespace pred {

namespace {

template <typename T>
int cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

int compare_line_entries(const MonitorSnapshot::LineEntry& a,
                         const MonitorSnapshot::LineEntry& b) {
  if (int c = cmp(a.line_start, b.line_start)) return c;
  if (int c = cmp(a.invalidations, b.invalidations)) return c;
  if (int c = cmp(a.samples, b.samples)) return c;
  if (int c = cmp(a.sample_writes, b.sample_writes)) return c;
  if (int c = cmp(a.predictions, b.predictions)) return c;
  if (int c = cmp(a.escalated, b.escalated)) return c;
  if (int c = cmp(a.attributed, b.attributed)) return c;
  if (int c = cmp(a.is_global, b.is_global)) return c;
  if (int c = cmp(a.object_start, b.object_start)) return c;
  if (int c = cmp(a.callsite, b.callsite)) return c;
  return cmp(a.label, b.label);
}

int compare_site_entries(const MonitorSnapshot::CallsiteEntry& a,
                         const MonitorSnapshot::CallsiteEntry& b) {
  if (int c = cmp(a.callsite, b.callsite)) return c;
  if (int c = cmp(a.label, b.label)) return c;
  if (int c = cmp(a.invalidations, b.invalidations)) return c;
  if (int c = cmp(a.samples, b.samples)) return c;
  return cmp(a.lines, b.lines);
}

int compare_ring_entries(const MonitorSnapshot::RingEntry& a,
                         const MonitorSnapshot::RingEntry& b) {
  if (int c = cmp(a.produced, b.produced)) return c;
  if (int c = cmp(a.consumed, b.consumed)) return c;
  return cmp(a.dropped, b.dropped);
}

template <typename T, typename Cmp>
int compare_vectors(const std::vector<T>& a, const std::vector<T>& b,
                    Cmp&& compare) {
  if (int c = cmp(a.size(), b.size())) return c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (int c = compare(a[i], b[i])) return c;
  }
  return 0;
}

}  // namespace

int compare_snapshots(const MonitorSnapshot& a, const MonitorSnapshot& b) {
  if (int c = cmp(a.sequence, b.sequence)) return c;
  if (int c = cmp(a.events_seen, b.events_seen)) return c;
  if (int c = cmp(a.events_dropped, b.events_dropped)) return c;
  if (int c = cmp(a.aggregation_passes, b.aggregation_passes)) return c;
  if (int c = cmp(a.escalations, b.escalations)) return c;
  if (int c = cmp(a.invalidations, b.invalidations)) return c;
  if (int c = cmp(a.samples, b.samples)) return c;
  if (int c = cmp(a.predictions, b.predictions)) return c;
  if (int c = cmp(a.virtual_lines, b.virtual_lines)) return c;
  if (int c = cmp(a.lines_tracked, b.lines_tracked)) return c;
  if (int c = compare_vectors(a.top_lines, b.top_lines, compare_line_entries)) {
    return c;
  }
  if (int c = compare_vectors(a.callsites, b.callsites, compare_site_entries)) {
    return c;
  }
  return compare_vectors(a.rings, b.rings, compare_ring_entries);
}

int compare_line_recs(const LineRec& a, const LineRec& b) {
  if (int c = cmp(a.sequence, b.sequence)) return c;
  return compare_line_entries(a.entry, b.entry);
}

int compare_site_recs(const SiteRec& a, const SiteRec& b) {
  if (int c = cmp(a.sequence, b.sequence)) return c;
  return compare_site_entries(a.entry, b.entry);
}

std::string site_key(const MonitorSnapshot::CallsiteEntry& ce) {
  if (ce.callsite != kNoCallsite) {
    return "c:" + std::to_string(ce.callsite);
  }
  return "g:" + ce.label;
}

SnapshotRecords decompose(std::uint64_t client_uid, std::uint64_t client_pid,
                          const MonitorSnapshot& snap) {
  SnapshotRecords rec;
  rec.client_uid = client_uid;
  rec.client.pid = client_pid;
  rec.client.latest = snap;
  rec.lines.reserve(snap.top_lines.size());
  for (const auto& le : snap.top_lines) {
    rec.lines.emplace_back(le.line_start, LineRec{snap.sequence, le});
  }
  rec.sites.reserve(snap.callsites.size());
  for (const auto& ce : snap.callsites) {
    rec.sites.emplace_back(site_key(ce), SiteRec{snap.sequence, ce});
  }
  return rec;
}

void FleetState::absorb(std::uint64_t client_uid, std::uint64_t client_pid,
                        const MonitorSnapshot& snap) {
  absorb(decompose(client_uid, client_pid, snap));
}

void FleetState::absorb(const SnapshotRecords& records) {
  auto [it, inserted] = clients_.try_emplace(records.client_uid,
                                             records.client);
  if (!inserted &&
      compare_snapshots(records.client.latest, it->second.latest) > 0) {
    it->second = records.client;
  }
  for (const auto& [line, rec] : records.lines) {
    auto [lit, fresh] =
        lines_.try_emplace({records.client_uid, line}, rec);
    if (!fresh && compare_line_recs(rec, lit->second) > 0) lit->second = rec;
  }
  for (const auto& [key, rec] : records.sites) {
    auto [sit, fresh] = sites_.try_emplace({records.client_uid, key}, rec);
    if (!fresh && compare_site_recs(rec, sit->second) > 0) sit->second = rec;
  }
}

void FleetState::merge(const FleetState& other) {
  for (const auto& [uid, rec] : other.clients_) {
    auto [it, inserted] = clients_.try_emplace(uid, rec);
    if (!inserted && compare_snapshots(rec.latest, it->second.latest) > 0) {
      it->second = rec;
    }
  }
  for (const auto& [key, rec] : other.lines_) {
    auto [it, inserted] = lines_.try_emplace(key, rec);
    if (!inserted && compare_line_recs(rec, it->second) > 0) it->second = rec;
  }
  for (const auto& [key, rec] : other.sites_) {
    auto [it, inserted] = sites_.try_emplace(key, rec);
    if (!inserted && compare_site_recs(rec, it->second) > 0) it->second = rec;
  }
}

bool FleetState::operator==(const FleetState& other) const {
  if (clients_.size() != other.clients_.size() ||
      lines_.size() != other.lines_.size() ||
      sites_.size() != other.sites_.size()) {
    return false;
  }
  for (auto it = clients_.begin(), jt = other.clients_.begin();
       it != clients_.end(); ++it, ++jt) {
    if (it->first != jt->first || it->second.pid != jt->second.pid ||
        compare_snapshots(it->second.latest, jt->second.latest) != 0) {
      return false;
    }
  }
  for (auto it = lines_.begin(), jt = other.lines_.begin();
       it != lines_.end(); ++it, ++jt) {
    if (it->first != jt->first ||
        compare_line_recs(it->second, jt->second) != 0) {
      return false;
    }
  }
  for (auto it = sites_.begin(), jt = other.sites_.begin();
       it != sites_.end(); ++it, ++jt) {
    if (it->first != jt->first ||
        compare_site_recs(it->second, jt->second) != 0) {
      return false;
    }
  }
  return true;
}

FleetRollup FleetState::rollup(std::size_t top_k) const {
  return build_rollup(clients_, lines_, sites_, top_k);
}

FleetRollup build_rollup(
    const std::map<std::uint64_t, ClientRec>& clients,
    const std::map<std::pair<std::uint64_t, Address>, LineRec>& lines,
    const std::map<std::pair<std::uint64_t, std::string>, SiteRec>& sites,
    std::size_t top_k) {
  FleetRollup out;
  out.clients = clients.size();
  for (const auto& [uid, rec] : clients) {
    (void)uid;
    out.events_seen += rec.latest.events_seen;
    out.events_dropped += rec.latest.events_dropped;
    out.escalations += rec.latest.escalations;
    out.invalidations += rec.latest.invalidations;
    out.samples += rec.latest.samples;
    out.predictions += rec.latest.predictions;
    out.virtual_lines += rec.latest.virtual_lines;
    out.lines_tracked += rec.latest.lines_tracked;
  }
  // Every dropped event could have been one invalidation (or one sample)
  // anywhere in the fleet — the interval is loose but sound.
  out.invalidations_upper = out.invalidations + out.events_dropped;
  out.samples_upper = out.samples + out.events_dropped;

  out.top_lines.reserve(lines.size());
  for (const auto& [key, rec] : lines) {
    FleetRollup::Line l;
    l.client_uid = key.first;
    const auto cit = clients.find(key.first);
    l.client_pid = cit != clients.end() ? cit->second.pid : 0;
    const std::uint64_t client_dropped =
        cit != clients.end() ? cit->second.latest.events_dropped : 0;
    l.line_start = rec.entry.line_start;
    l.invalidations = rec.entry.invalidations;
    l.invalidations_upper = rec.entry.invalidations + client_dropped;
    l.samples = rec.entry.samples;
    l.sample_writes = rec.entry.sample_writes;
    l.predictions = rec.entry.predictions;
    l.escalated = rec.entry.escalated;
    l.attributed = rec.entry.attributed;
    l.is_global = rec.entry.is_global;
    l.label = rec.entry.label;
    out.top_lines.push_back(std::move(l));
  }
  std::sort(out.top_lines.begin(), out.top_lines.end(),
            [](const FleetRollup::Line& a, const FleetRollup::Line& b) {
              if (a.invalidations != b.invalidations) {
                return a.invalidations > b.invalidations;
              }
              if (a.samples != b.samples) return a.samples > b.samples;
              if (a.client_uid != b.client_uid) {
                return a.client_uid < b.client_uid;
              }
              return a.line_start < b.line_start;
            });
  if (out.top_lines.size() > top_k) out.top_lines.resize(top_k);

  // Sites group by symbolic label across clients — the only identity that
  // survives process boundaries. Unlabeled entries pool under "(unnamed)".
  std::unordered_map<std::string, FleetRollup::Site> by_label;
  std::unordered_map<std::string, std::uint64_t> last_client;
  for (const auto& [key, rec] : sites) {
    const std::string label =
        rec.entry.label.empty() ? "(unnamed)" : rec.entry.label;
    FleetRollup::Site& site = by_label[label];
    site.label = label;
    site.invalidations += rec.entry.invalidations;
    site.samples += rec.entry.samples;
    site.lines += rec.entry.lines;
    auto [lc, first_time] = last_client.try_emplace(label, key.first);
    if (first_time || lc->second != key.first) {
      site.clients += 1;
      lc->second = key.first;
    }
  }
  out.sites.reserve(by_label.size());
  for (auto& [label, site] : by_label) {
    site.invalidations_upper = site.invalidations + out.events_dropped;
    site.samples_upper = site.samples + out.events_dropped;
    out.sites.push_back(std::move(site));
  }
  std::sort(out.sites.begin(), out.sites.end(),
            [](const FleetRollup::Site& a, const FleetRollup::Site& b) {
              if (a.invalidations != b.invalidations) {
                return a.invalidations > b.invalidations;
              }
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.label < b.label;
            });
  return out;
}

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string format_rollup(const FleetRollup& r) {
  std::string out;
  append_fmt(out,
             "=== fleet rollup: %" PRIu64 " client(s) ===\n"
             "events: %" PRIu64 " aggregated, %" PRIu64 " dropped\n"
             "totals: %" PRIu64 " escalated lines, invalidations [%" PRIu64
             ", %" PRIu64 "], samples [%" PRIu64 ", %" PRIu64 "], %" PRIu64
             " predictions, %" PRIu64 " virtual lines, %" PRIu64
             " lines tracked\n",
             r.clients, r.events_seen, r.events_dropped, r.escalations,
             r.invalidations, r.invalidations_upper, r.samples,
             r.samples_upper, r.predictions, r.virtual_lines,
             r.lines_tracked);
  if (!r.top_lines.empty()) {
    append_fmt(out, "top %zu lines:\n", r.top_lines.size());
    for (const auto& l : r.top_lines) {
      append_fmt(out,
                 "  pid %-7" PRIu64 " 0x%012" PRIxPTR "  inv [%-6" PRIu64
                 ", %-6" PRIu64 "] samples %-8" PRIu64 "%s",
                 l.client_pid, l.line_start, l.invalidations,
                 l.invalidations_upper, l.samples,
                 l.escalated ? " [tracked]" : "");
      if (l.attributed) {
        append_fmt(out, " %s %s", l.is_global ? "global" : "heap",
                   l.label.c_str());
      }
      out += '\n';
    }
  }
  if (!r.sites.empty()) {
    out += "hot callsites (fleet-wide):\n";
    for (const auto& s : r.sites) {
      append_fmt(out,
                 "  %-40s inv [%-6" PRIu64 ", %-6" PRIu64 "] samples %-8"
                 PRIu64 " (%" PRIu64 " line(s), %" PRIu64 " client(s))\n",
                 s.label.c_str(), s.invalidations, s.invalidations_upper,
                 s.samples, s.lines, s.clients);
    }
  }
  return out;
}

}  // namespace pred
