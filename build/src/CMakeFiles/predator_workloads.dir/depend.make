# Empty dependencies file for predator_workloads.
# This may be replaced when dependencies are built.
