// Tests for the static false-sharing predictor (§ static prediction layer):
// per-role footprints with trip-count weights, the conflict overlay across
// cache-line geometries (including latent conflicts at larger lines),
// sync/handoff claim exclusion, slot-stride structure detection, the static
// compile_plan lowering — and two closed-loop proofs:
//
//   * a differential fuzz suite over 64+ generator seeds: every cache line
//     the DYNAMIC detector convicts of false sharing on a planted-slot
//     module is also predicted statically (100% recall), predictions never
//     leave the planted region, and confined or whole-region-handed-off
//     variants predict NOTHING;
//   * the purely static repair loop: global_grid goes report -> plan ->
//     repair with a >= 90% simulated invalidation drop from a plan compiled
//     before anything ran.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "api/predator.hpp"
#include "instrument/analysis/generator.hpp"
#include "instrument/analysis/predict.hpp"
#include "instrument/interp.hpp"
#include "instrument/ir.hpp"
#include "instrument/pass.hpp"
#include "repair/plan.hpp"
#include "repair/planner.hpp"
#include "repair/targets.hpp"
#include "repair/verifier.hpp"
#include "runtime/report.hpp"

namespace pred {
namespace {

using ir::Function;
using ir::FunctionBuilder;
using ir::Module;
using ir::PredictedLine;
using ir::PredictOptions;
using ir::Reg;
using ir::RoleSpec;
using ir::StaticFsReport;

/// worker NAME(buf, n): `trips` counted RMW sweeps writing
/// [buf+wr_off, +8) and reading [buf+rd_off, +8).
Function make_worker(const std::string& name, std::int64_t wr_off,
                     std::int64_t rd_off, std::int64_t trips) {
  FunctionBuilder b(name, 2);
  const Reg i = b.fresh_reg();
  b.move(i, b.const_val(0));
  const Reg bound = b.const_val(trips);
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t exit = b.new_block();
  b.br(header);
  b.set_block(header);
  b.cond_br(b.cmp_lt(i, bound), body, exit);
  b.set_block(body);
  const Reg v = b.load(b.arg(0), rd_off);
  b.store(b.arg(0), v, wr_off);
  b.move(i, b.add(i, b.const_val(1)));
  b.br(header);
  b.set_block(exit);
  b.ret(i);
  return b.take();
}

Module two_workers(std::int64_t off0, std::int64_t off1, std::int64_t trips) {
  Module m;
  m.functions.push_back(make_worker("w0", off0, off0, trips));
  m.functions.push_back(make_worker("w1", off1, off1, trips));
  EXPECT_EQ(ir::verify(m), "");
  return m;
}

// ---------------------------------------------------------------------------
// Footprints and trip weighting
// ---------------------------------------------------------------------------

TEST(Predict, CountedLoopsWeightFootprintsByEstimatedTrips) {
  const Module m = two_workers(0, 8, 64);
  const StaticFsReport rep =
      ir::predict_static_fs(m, ir::default_roles(m));
  ASSERT_EQ(rep.footprints.size(), 2u);
  for (const auto& fp : rep.footprints) {
    EXPECT_EQ(fp.opaque_sites, 0u);
    ASSERT_FALSE(fp.intervals.empty());
    for (const auto& iv : fp.intervals) {
      EXPECT_EQ(iv.weight, 64u) << fp.function;  // trip count, not 1
    }
  }

  ASSERT_EQ(rep.lines.size(), 1u);
  const PredictedLine& l = rep.lines[0];
  EXPECT_EQ(l.region, 0u);
  EXPECT_EQ(l.line_size, 64u);
  EXPECT_EQ(l.line_index, 0);
  EXPECT_TRUE(l.false_sharing);
  EXPECT_FALSE(l.true_sharing);
  EXPECT_FALSE(l.latent);
  EXPECT_GT(l.ww_weight, 0u);
  EXPECT_GT(l.wr_weight, 0u);
  EXPECT_DOUBLE_EQ(l.score, 2.0 * static_cast<double>(l.ww_weight) +
                                static_cast<double>(l.wr_weight));
  ASSERT_EQ(l.spans.size(), 2u);
  EXPECT_EQ(l.spans[0].role, 0u);
  EXPECT_EQ(l.spans[1].role, 1u);
  EXPECT_EQ(rep.predicted_line_count(0, 64), 1u);
}

TEST(Predict, SameWordIsTrueSharingNotFalse) {
  const Module m = two_workers(0, 0, 16);
  const StaticFsReport rep =
      ir::predict_static_fs(m, ir::default_roles(m));
  ASSERT_EQ(rep.lines.size(), 1u);
  EXPECT_TRUE(rep.lines[0].true_sharing);
  EXPECT_FALSE(rep.lines[0].false_sharing);
}

TEST(Predict, ConflictOnlyAtLargerGeometryIsLatent) {
  // Slots at 0 and 64: clean at 64B, colliding at 128B.
  const Module m = two_workers(0, 64, 16);
  const StaticFsReport rep =
      ir::predict_static_fs(m, ir::default_roles(m));
  ASSERT_EQ(rep.lines.size(), 1u);
  EXPECT_EQ(rep.lines[0].line_size, 128u);
  EXPECT_TRUE(rep.lines[0].latent);
  EXPECT_TRUE(rep.lines[0].false_sharing);
  EXPECT_EQ(rep.predicted_line_count(0, 64), 0u);   // nothing at base size
  EXPECT_EQ(rep.predicted_line_count(0, 128), 0u);  // latent excluded
}

TEST(Predict, ConfinedHeadroomSuppressesTheRoleEntirely) {
  const Module m = two_workers(0, 8, 16);
  std::vector<RoleSpec> roles = ir::default_roles(m);
  for (RoleSpec& r : roles) r.confined_len = 64;
  const StaticFsReport rep = ir::predict_static_fs(m, roles);
  EXPECT_TRUE(rep.lines.empty());
  for (const auto& fp : rep.footprints) {
    EXPECT_TRUE(fp.intervals.empty()) << fp.function;
    EXPECT_GT(fp.confined_skipped, 0u) << fp.function;
  }
}

TEST(Predict, DefaultRolesAreUncalledNonBareRoots) {
  Module m;
  m.functions.push_back(make_worker("leaf", 0, 0, 4));  // @0, called below
  {
    FunctionBuilder b("driver", 2);
    const Reg a0 = b.fresh_reg();
    const Reg a1 = b.fresh_reg();
    b.move(a0, b.arg(0));
    b.move(a1, b.arg(1));
    b.call(0, a0, 2);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  m.functions.push_back(make_worker("ghost$bare", 8, 8, 4));
  ASSERT_EQ(ir::verify(m), "");
  const std::vector<RoleSpec> roles = ir::default_roles(m);
  ASSERT_EQ(roles.size(), 1u);
  EXPECT_EQ(roles[0].function, "driver");
  EXPECT_EQ(roles[0].role, 0u);
}

// ---------------------------------------------------------------------------
// Sync/handoff claims
// ---------------------------------------------------------------------------

/// worker that hands off [buf+claim_lo, +claim_len) then does one RMW of
/// [buf+off, +8) inside the claim.
Function make_handoff_worker(const std::string& name, std::int64_t claim_lo,
                             std::int64_t claim_len, std::int64_t off) {
  FunctionBuilder b(name, 2);
  b.handoff(b.arg(0), b.const_val(claim_len), claim_lo);
  const Reg v = b.load(b.arg(0), off);
  b.store(b.arg(0), v, off);
  b.ret(b.const_val(0));
  return b.take();
}

TEST(Predict, OverlappingHandoffClaimsAreHappensOrdered) {
  // Both roles claim the SAME [0, 64) range before touching it: one
  // ownership chain, so their traffic is ordered and nothing conflicts.
  Module m;
  m.functions.push_back(make_handoff_worker("p0", 0, 64, 0));
  m.functions.push_back(make_handoff_worker("p1", 0, 64, 8));
  ASSERT_EQ(ir::verify(m), "");
  const StaticFsReport rep =
      ir::predict_static_fs(m, ir::default_roles(m));
  EXPECT_TRUE(rep.lines.empty());
  for (const auto& fp : rep.footprints) {
    for (const auto& iv : fp.intervals) EXPECT_TRUE(iv.handed_off);
  }
}

TEST(Predict, DisjointClaimsOnOneLineStillConflict) {
  // Each role claims only its own slot: two independent ownership chains
  // whose writes still collide on the line — a real pipeline hazard.
  Module m;
  m.functions.push_back(make_handoff_worker("p0", 0, 16, 0));
  m.functions.push_back(make_handoff_worker("p1", 16, 16, 16));
  ASSERT_EQ(ir::verify(m), "");
  const StaticFsReport rep =
      ir::predict_static_fs(m, ir::default_roles(m));
  ASSERT_EQ(rep.predicted_line_count(0, 64), 1u);
  EXPECT_TRUE(rep.lines[0].false_sharing);
  for (const auto& s : rep.lines[0].spans) EXPECT_TRUE(s.handed_off_only);
}

// ---------------------------------------------------------------------------
// Structure detection and the static plan lowering
// ---------------------------------------------------------------------------

Module four_slot_grid() {
  Module m;
  for (int t = 0; t < 4; ++t) {
    // Slot t: write [16t, +8), read [16t+8, +8).
    m.functions.push_back(
        make_worker("slot" + std::to_string(t), 16 * t, 16 * t + 8, 32));
  }
  EXPECT_EQ(ir::verify(m), "");
  return m;
}

TEST(Predict, DetectsUniformSlotStrideAndExtent) {
  const StaticFsReport rep =
      ir::predict_static_fs(four_slot_grid(), ir::default_roles(four_slot_grid()));
  ASSERT_EQ(rep.region_slot_stride.size(), 1u);
  EXPECT_EQ(rep.region_slot_stride[0], 16u);
  EXPECT_EQ(rep.region_extent[0], 64u);
  EXPECT_EQ(rep.predicted_line_count(0, 64), 1u);
}

TEST(Predict, StaticReportCompilesIntoPadSlotsPlan) {
  const Module m = four_slot_grid();
  const StaticFsReport rep = ir::predict_static_fs(m, ir::default_roles(m));
  const repair::RepairPlan plan =
      repair::compile_plan(rep, {{"grid", /*is_global=*/true}});
  ASSERT_EQ(plan.entries.size(), 1u);
  const repair::PlanEntry& e = plan.entries[0];
  EXPECT_TRUE(e.is_global);
  EXPECT_EQ(e.site_key, "grid");
  EXPECT_EQ(e.action, repair::PlanAction::kPadSlots);
  EXPECT_EQ(e.slot_stride, 16u);
  EXPECT_EQ(e.pad_to, 64u);
  EXPECT_EQ(e.alignment, 64u);
  EXPECT_EQ(e.object_size, 64u);
  EXPECT_GT(e.expected_eliminated, 0u);
  EXPECT_FALSE(e.evidence.empty());
}

TEST(Predict, TrueSharingOnlyReportCompilesToNothing) {
  const Module m = two_workers(0, 0, 16);
  const StaticFsReport rep = ir::predict_static_fs(m, ir::default_roles(m));
  const repair::RepairPlan plan =
      repair::compile_plan(rep, {{"grid", /*is_global=*/true}});
  EXPECT_TRUE(plan.empty());  // padding cannot fix a real data race
}

TEST(Predict, FormatReportNamesTheConflict) {
  const Module m = four_slot_grid();
  const std::string text =
      ir::format_static_report(ir::predict_static_fs(m, ir::default_roles(m)));
  EXPECT_NE(text.find("static prediction:"), std::string::npos);
  EXPECT_NE(text.find("false sharing"), std::string::npos);
  EXPECT_NE(text.find("slot stride 16"), std::string::npos);
}

// ---------------------------------------------------------------------------
// StaticPredictFuzz: differential recall against the dynamic detector
// ---------------------------------------------------------------------------

alignas(64) std::int64_t g_fuzz_buffer[1024];

/// Runs the module's planted slot kernels as distinct logical threads under
/// a fully deterministic detector and returns the buffer-relative indices
/// of every line convicted of (possibly mixed) false sharing.
std::set<std::int64_t> dynamic_fs_lines(const Module& generated,
                                        std::uint32_t slots) {
  Module m = generated;
  ir::run_instrumentation_pass(m, {});
  SessionOptions opts;
  opts.runtime.tracking_threshold = 1;
  opts.runtime.report_invalidation_threshold = 1;
  opts.runtime.prediction_enabled = false;
  opts.runtime.set_sampling_rate(1.0);
  opts.heap_size = 4 * 1024 * 1024;
  Session session(opts);
  std::memset(g_fuzz_buffer, 0, sizeof g_fuzz_buffer);
  session.register_global(g_fuzz_buffer, sizeof g_fuzz_buffer, "gen_buffer");
  ir::Interpreter interp(&session);
  const std::int64_t args[] = {
      static_cast<std::int64_t>(
          reinterpret_cast<std::intptr_t>(g_fuzz_buffer)),
      8};
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t t = 0; t < slots; ++t) {
      const std::string want = "slot" + std::to_string(t);
      const Function* fn = nullptr;
      for (const Function& f : m.functions) {
        if (f.name == want) fn = &f;
      }
      EXPECT_NE(fn, nullptr);
      const auto res = interp.run(m, *fn, args, static_cast<ThreadId>(t));
      EXPECT_FALSE(res.step_limit_exceeded);
    }
  }
  std::set<std::int64_t> lines;
  const Address base = reinterpret_cast<Address>(g_fuzz_buffer);
  for (const ObjectFinding& f : session.report().findings) {
    if (f.object.name != "gen_buffer") continue;
    for (const LineFinding& l : f.lines) {
      if (l.kind == SharingKind::kFalseSharing ||
          l.kind == SharingKind::kMixed) {
        lines.insert(static_cast<std::int64_t>((l.line_start - base) / 64));
      }
    }
  }
  return lines;
}

std::vector<RoleSpec> slot_roles(std::uint32_t slots) {
  std::vector<RoleSpec> roles;
  for (std::uint32_t t = 0; t < slots; ++t) {
    RoleSpec spec;
    spec.function = "slot" + std::to_string(t);
    spec.role = t;
    roles.push_back(spec);
  }
  return roles;
}

TEST(StaticPredictFuzz, FullRecallOfPlantedLinesAndSilenceWhenSafe) {
  ir::GeneratorOptions gopts;
  gopts.segments = 2;
  gopts.accesses_per_block = 2;
  std::uint64_t total_dynamic_lines = 0;
  std::uint64_t total_predicted = 0;
  std::uint64_t handoff_variants = 0;

  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const std::uint32_t slots = 2 + static_cast<std::uint32_t>(seed % 3);
    gopts.callees = static_cast<std::uint32_t>(seed % 3);
    gopts.planted_slots = slots;
    gopts.planted_stride = 8u * (1u + static_cast<std::uint32_t>(seed % 2));
    gopts.planted_base_words = 16 + 8 * static_cast<std::uint32_t>(seed % 3);
    gopts.planted_iters = 6;
    gopts.planted_handoff = false;
    const Module generated = generate_module(seed * 0x517cc1b7ull, gopts);
    // Option plumbing must not disturb the RNG stream: regeneration is
    // byte-identical.
    EXPECT_EQ(to_string(generated),
              to_string(generate_module(seed * 0x517cc1b7ull, gopts)))
        << "seed " << seed;

    const std::set<std::int64_t> dynamic = dynamic_fs_lines(generated, slots);
    total_dynamic_lines += dynamic.size();

    const StaticFsReport rep =
        ir::predict_static_fs(generated, slot_roles(slots));
    std::set<std::int64_t> predicted;
    for (const PredictedLine& l : rep.lines) {
      if (l.line_size == 64 && !l.latent) predicted.insert(l.line_index);
    }
    total_predicted += predicted.size();

    // 100% recall: every dynamically convicted line was predicted.
    for (const std::int64_t line : dynamic) {
      EXPECT_TRUE(predicted.count(line))
          << "seed " << seed << ": dynamic FS line " << line
          << " not predicted statically";
    }
    // No prediction leaves the planted region.
    const std::int64_t lo = 8 * gopts.planted_base_words / 64;
    const std::int64_t hi =
        (8 * gopts.planted_base_words + slots * gopts.planted_stride + 63) /
        64;
    for (const std::int64_t line : predicted) {
      EXPECT_TRUE(line >= lo && line < hi)
          << "seed " << seed << ": predicted line " << line
          << " outside planted region [" << lo << "," << hi << ")";
    }

    // Confined variant: every role's headroom covers all its accesses —
    // zero predictions.
    std::vector<RoleSpec> confined = slot_roles(slots);
    for (RoleSpec& r : confined) {
      r.confined_len = 8ull * gopts.planted_base_words +
                       std::uint64_t{slots} * gopts.planted_stride;
    }
    EXPECT_TRUE(ir::predict_static_fs(generated, confined).lines.empty())
        << "seed " << seed;

    // Handed-off variant: every sweep opens with a whole-region handoff, so
    // all roles share one ownership chain — zero predictions.
    gopts.planted_handoff = true;
    const Module handed = generate_module(seed * 0x517cc1b7ull, gopts);
    gopts.planted_handoff = false;
    const StaticFsReport hrep =
        ir::predict_static_fs(handed, slot_roles(slots));
    EXPECT_TRUE(hrep.lines.empty()) << "seed " << seed;
    ++handoff_variants;
  }

  // The sweep must exercise the property, not vacuously pass it.
  EXPECT_GE(total_dynamic_lines, 16u);
  EXPECT_GE(total_predicted, 16u);
  EXPECT_EQ(handoff_variants, 64u);
}

// ---------------------------------------------------------------------------
// The purely static repair loop
// ---------------------------------------------------------------------------

TEST(StaticRepairLoop, GlobalGridRepairsFromStaticallyCompiledPlan) {
  const repair::RepairTarget* target =
      repair::find_repair_target("global_grid");
  ASSERT_NE(target, nullptr);
  for (const std::uint32_t threads : {4u, 8u}) {
    repair::VerifierOptions vopt;
    vopt.threads = threads;
    const repair::RepairOutcome out =
        repair::run_static_repair_loop(*target, vopt);
    ASSERT_FALSE(out.plan.empty()) << threads << " threads";
    EXPECT_EQ(out.plan.entries[0].site_key, "grid_slots");
    EXPECT_EQ(out.plan.entries[0].action, repair::PlanAction::kPadSlots);
    EXPECT_EQ(out.plan.entries[0].slot_stride, 16u);
    EXPECT_EQ(out.plan.entries[0].pad_to, 64u);
    EXPECT_GT(out.baseline_invalidations, 0u) << threads << " threads";
    EXPECT_GE(out.drop_pct(), 0.9) << threads << " threads";
    EXPECT_TRUE(out.repaired(0.9)) << threads << " threads";
    EXPECT_TRUE(out.checksums_match());
  }
}

TEST(StaticRepairLoop, TargetWithoutStaticSpecNeverRepairs) {
  const repair::RepairTarget* target =
      repair::find_repair_target("counter_pool");
  ASSERT_NE(target, nullptr);
  const repair::RepairOutcome out = repair::run_static_repair_loop(*target);
  EXPECT_TRUE(out.plan.empty());
  EXPECT_FALSE(out.repaired(0.0));
}

}  // namespace
}  // namespace pred
