# Empty compiler generated dependencies file for predator-cli.
# This may be replaced when dependencies are built.
