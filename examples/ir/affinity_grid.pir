# Affinity grid: four worker roots, each hammering its own 16-byte slot of
# one shared region — slot t lives at [16t, 16t+16), so all four slots pack
# into a single 64-byte cache line. No worker ever touches another's slot:
# textbook false sharing, invisible to any single-function view.
#
# Run `predator-cli analyze examples/ir/affinity_grid.pir --predict` to see
# the static predictor assign each call-graph root a thread role, fold the
# constant-bound loops into per-access weights (64 iterations each), overlay
# the four footprints onto line geometry, and report region 0 line 0 as
# false sharing with a detected 16-byte slot stride — the evidence
# `repair --static` compiles into a pad-slots plan without running anything.

# worker0(buf, n): 64 read-modify-write sweeps of slot 0 ([0, 16)).
func worker0(2 args, 8 regs):
bb0:
  r2 = const 0
  r3 = const 64
  r4 = const 1
  br bb1
bb1:
  r5 = r2 < r3
  br r5 ? bb2 : bb3
bb2:
  r6 = load.8 [r0 + 8]
  store.8 [r0], r6
  r2 = r2 + r4
  br bb1
bb3:
  ret r2

# worker1(buf, n): slot 1 ([16, 32)).
func worker1(2 args, 8 regs):
bb0:
  r2 = const 0
  r3 = const 64
  r4 = const 1
  br bb1
bb1:
  r5 = r2 < r3
  br r5 ? bb2 : bb3
bb2:
  r6 = load.8 [r0 + 24]
  store.8 [r0 + 16], r6
  r2 = r2 + r4
  br bb1
bb3:
  ret r2

# worker2(buf, n): slot 2 ([32, 48)).
func worker2(2 args, 8 regs):
bb0:
  r2 = const 0
  r3 = const 64
  r4 = const 1
  br bb1
bb1:
  r5 = r2 < r3
  br r5 ? bb2 : bb3
bb2:
  r6 = load.8 [r0 + 40]
  store.8 [r0 + 32], r6
  r2 = r2 + r4
  br bb1
bb3:
  ret r2

# worker3(buf, n): slot 3 ([48, 64)).
func worker3(2 args, 8 regs):
bb0:
  r2 = const 0
  r3 = const 64
  r4 = const 1
  br bb1
bb1:
  r5 = r2 < r3
  br r5 ? bb2 : bb3
bb2:
  r6 = load.8 [r0 + 56]
  store.8 [r0 + 48], r6
  r2 = r2 + r4
  br bb1
bb3:
  ret r2
