file(REMOVE_RECURSE
  "CMakeFiles/predator_alloc.dir/alloc/heap_region.cpp.o"
  "CMakeFiles/predator_alloc.dir/alloc/heap_region.cpp.o.d"
  "CMakeFiles/predator_alloc.dir/alloc/predator_allocator.cpp.o"
  "CMakeFiles/predator_alloc.dir/alloc/predator_allocator.cpp.o.d"
  "CMakeFiles/predator_alloc.dir/alloc/thread_heap.cpp.o"
  "CMakeFiles/predator_alloc.dir/alloc/thread_heap.cpp.o.d"
  "libpredator_alloc.a"
  "libpredator_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
