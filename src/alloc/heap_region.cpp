#include "alloc/heap_region.hpp"

#include <sys/mman.h>

#include "common/check.hpp"

namespace pred {

namespace {
// A fixed hint keeps heap addresses stable across runs, which in turn keeps
// report addresses stable (the paper pins its heap for the same reason).
// MAP_FIXED is deliberately avoided: if the hint is taken we fall back to
// wherever the kernel places us.
constexpr std::uintptr_t kHeapHint = 0x4000000000ull;
}  // namespace

HeapRegion::HeapRegion(std::size_t size, std::size_t line_size)
    : size_(size), line_size_(line_size) {
  PRED_CHECK(size > 0);
  void* p = ::mmap(reinterpret_cast<void*>(kHeapHint), size,
                   PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  PRED_CHECK(p != MAP_FAILED);
  base_ = reinterpret_cast<Address>(p);
  // Keep the base line-aligned regardless of what the kernel returned.
  const Address aligned = round_up(base_, line_size_);
  cursor_.store(aligned - base_, std::memory_order_relaxed);
}

HeapRegion::~HeapRegion() {
  if (base_) ::munmap(reinterpret_cast<void*>(base_), size_);
}

Address HeapRegion::allocate_span(std::size_t bytes) {
  const std::size_t want = round_up(bytes, line_size_);
  std::size_t offset = cursor_.fetch_add(want, std::memory_order_relaxed);
  if (offset + want > size_) return 0;  // exhausted
  return base_ + offset;
}

}  // namespace pred
