// Lock-free single-producer event ring with drop-oldest overload policy.
//
// One ring exists per (monitor, OS thread); the owning mutator thread is
// the only producer, and whoever holds the monitor's aggregation mutex (the
// background aggregator thread, or a thread inside Monitor::snapshot) is
// the only concurrent consumer. The producer is wait-free and NEVER blocks
// or spins on the consumer: when the ring is full it overwrites the oldest
// slot and counts the casualty in `dropped()`, so overload sheds visibly
// instead of stalling the instrumented program (the same collector-side
// shedding discipline cacheSight's sample_collector uses).
//
// Slot protocol (seqlock per slot, Boehm-style fences): each slot carries a
// sequence word. For ticket t (the t-th event ever pushed), the producer
// stores seq = 2t+1 ("being written"), a release fence, the payload as
// relaxed atomics, a release fence, then seq = 2t+2 ("published"). The
// consumer accepts slot contents only when seq reads 2t+2 both before and
// after the payload copy (with acquire fences in between), so a slot
// overwritten mid-read is detected and skipped rather than surfaced torn.
// Payload words are themselves atomics, so the race window is well-defined.
//
// Accounting: `dropped()` is maintained by the producer (it increments when
// it overwrites a slot the consumer has not passed yet). Under a concurrent
// in-flight read the producer may count an event the consumer in fact
// salvaged, so dropped() is an upper bound that is exact whenever producer
// and consumer do not overlap — in particular in deterministic tests and
// whenever the aggregator keeps up. produced == consumed + dropped holds as
// ">=" live and as "==" at quiescence.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "monitor/event.hpp"

namespace pred {

class EventRing {
 public:
  static constexpr std::size_t kMinCapacity = 8;

  /// `capacity` is rounded up to a power of two (>= kMinCapacity).
  explicit EventRing(std::size_t capacity) {
    std::size_t cap = kMinCapacity;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Publishes one event. Wait-free, single producer. When the ring is full
  /// the oldest unconsumed event is overwritten and counted as dropped.
  void push(const MonitorEvent& ev) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t >= capacity() &&
        head_.load(std::memory_order_relaxed) <= t - capacity()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    Slot& s = slots_[t & mask_];
    s.seq.store(2 * t + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.addr.store(ev.addr, std::memory_order_relaxed);
    s.arg.store(ev.arg, std::memory_order_relaxed);
    s.meta.store(static_cast<std::uint64_t>(ev.tid) |
                     (static_cast<std::uint64_t>(ev.type) << 32),
                 std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.seq.store(2 * t + 2, std::memory_order_relaxed);
    tail_.store(t + 1, std::memory_order_release);
  }

  /// Consumes every currently published event in order, invoking
  /// fn(const MonitorEvent&). Single consumer at a time (the monitor
  /// serializes callers under its aggregation mutex). Events overwritten by
  /// the producer while draining are skipped (they are covered by the
  /// producer's dropped counter). Returns the number of events delivered.
  template <typename F>
  std::size_t drain(F&& fn) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    std::size_t n = 0;
    while (h < t) {
      if (t - h > capacity()) {
        // Lapped before this pass even looked: jump to the oldest slot the
        // producer can still be preserving.
        h = t - capacity();
        head_.store(h, std::memory_order_relaxed);
        continue;
      }
      MonitorEvent ev;
      if (read_slot(h, &ev)) {
        ++h;
        // Publish progress immediately so the producer's drop accounting
        // sees the freshest consumer position.
        head_.store(h, std::memory_order_relaxed);
        fn(static_cast<const MonitorEvent&>(ev));
        ++n;
      } else {
        // Overwritten mid-read; everything older than (tail - capacity) is
        // irrecoverable now.
        const std::uint64_t t2 = tail_.load(std::memory_order_acquire);
        const std::uint64_t floor = t2 > capacity() ? t2 - capacity() : 0;
        h = floor > h ? floor : h + 1;
        head_.store(h, std::memory_order_relaxed);
      }
    }
    consumed_.fetch_add(n, std::memory_order_relaxed);
    return n;
  }

  std::uint64_t produced() const {
    return tail_.load(std::memory_order_relaxed);
  }
  std::uint64_t consumed() const {
    return consumed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 2t+1 writing, 2t+2 published
    std::atomic<std::uint64_t> addr{0};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint64_t> meta{0};  ///< tid | (type << 32)
  };

  bool read_slot(std::uint64_t ticket, MonitorEvent* out) const {
    const Slot& s = slots_[ticket & mask_];
    const std::uint64_t want = 2 * ticket + 2;
    if (s.seq.load(std::memory_order_relaxed) != want) return false;
    std::atomic_thread_fence(std::memory_order_acquire);
    out->addr = s.addr.load(std::memory_order_relaxed);
    out->arg = s.arg.load(std::memory_order_relaxed);
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    out->tid = static_cast<ThreadId>(meta & 0xffffffffu);
    out->type = static_cast<MonitorEventType>((meta >> 32) & 0xff);
    std::atomic_thread_fence(std::memory_order_acquire);
    return s.seq.load(std::memory_order_relaxed) == want;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;

  alignas(64) std::atomic<std::uint64_t> tail_{0};     // producer cursor
  alignas(64) std::atomic<std::uint64_t> dropped_{0};  // producer-maintained
  alignas(64) std::atomic<std::uint64_t> head_{0};     // consumer cursor
  std::atomic<std::uint64_t> consumed_{0};
};

}  // namespace pred
