// Trace persistence: serialize per-thread access traces to a compact binary
// file and load them back. This enables the record-once / analyze-many
// workflow: capture an execution a single time, then re-run detection under
// different thresholds, sampling rates, line sizes, or predictor settings
// without re-executing the program — the offline analogue of the paper's
// runtime pipeline (and the representation its prediction machinery really
// consumes).
//
// Format v2 (current): a stream of wire_format frames (shared with the
// snapshot/collector wire — magic "PRFR", version, type, length, CRC32 per
// frame; see trace/wire_format.hpp):
//
//   kTraceHeader frame   fields { 1: thread count, 2: total events }
//   kThreadTrace frame   fields { 1: thread index, 2: event count,
//                                 3: packed events } — one per thread
//
// Packed events are the v1 16-byte records: { addr u64, think u32,
// type u8, size u8, pad u16 }, little-endian. Unknown payload fields are
// skipped, so newer writers can annotate traces without breaking this
// reader.
//
// Format v1 (legacy, still readable): raw magic 0x50525452 ("PRTR"),
// version u32 = 1, thread count u32, then per thread a u64 count followed
// by the packed events. No per-frame integrity; kept only so pre-v2 trace
// files keep loading.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/executor.hpp"

namespace pred {

/// v1 file magic ("PRTR"); v2 streams start with wire::kFrameMagic.
inline constexpr std::uint32_t kTraceMagic = 0x50525452u;
inline constexpr std::uint32_t kTraceVersion = 2;

/// Writes traces to a stream/file in the v2 frame format. Returns false on
/// I/O failure.
bool save_traces(std::ostream& out, const std::vector<ThreadTrace>& traces);
bool save_traces_file(const std::string& path,
                      const std::vector<ThreadTrace>& traces);

/// Reads traces back, accepting both v2 frame streams and v1 legacy files.
/// Returns false on I/O failure, bad magic, version skew, frame corruption,
/// or truncation; `traces` is cleared first and left empty on failure.
bool load_traces(std::istream& in, std::vector<ThreadTrace>* traces);
bool load_traces_file(const std::string& path,
                      std::vector<ThreadTrace>* traces);

/// Total event count across threads (reporting convenience).
std::size_t total_events(const std::vector<ThreadTrace>& traces);

/// Packs/unpacks one thread's events as the 16-byte wire records shared by
/// both format versions (exposed for the codec tests).
std::string pack_events(const ThreadTrace& trace);
bool unpack_events(std::string_view bytes, ThreadTrace* out);

}  // namespace pred
