# Empty dependencies file for predator_alloc.
# This may be replaced when dependencies are built.
