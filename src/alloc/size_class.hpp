// Segregated-fit size classes for the per-thread heaps, in the Heap
// Layers/Hoard tradition the paper builds on.
#pragma once

#include <array>
#include <cstddef>

namespace pred {

/// Power-of-two classes from 16 bytes to 16 KB; larger requests bypass the
/// class system and take a dedicated span.
class SizeClasses {
 public:
  static constexpr std::size_t kMinSize = 16;
  static constexpr std::size_t kMaxSize = 16 * 1024;
  static constexpr std::size_t kNumClasses = 11;  // 16 << 10 == 16K

  /// Class index for a request, or kNumClasses for large requests.
  static constexpr std::size_t index_for(std::size_t size) {
    std::size_t cls = 0;
    std::size_t cap = kMinSize;
    while (cap < size) {
      cap <<= 1;
      ++cls;
    }
    return cls <= kNumClasses - 1 && size <= kMaxSize ? cls : kNumClasses;
  }

  /// Allocation size of a class.
  static constexpr std::size_t size_of(std::size_t cls) {
    return kMinSize << cls;
  }

  static constexpr bool is_large(std::size_t size) { return size > kMaxSize; }
};

static_assert(SizeClasses::index_for(1) == 0);
static_assert(SizeClasses::index_for(16) == 0);
static_assert(SizeClasses::index_for(17) == 1);
static_assert(SizeClasses::index_for(16 * 1024) == SizeClasses::kNumClasses - 1);
static_assert(SizeClasses::index_for(16 * 1024 + 1) == SizeClasses::kNumClasses);
static_assert(SizeClasses::size_of(0) == 16);
static_assert(SizeClasses::size_of(10) == 16 * 1024);

}  // namespace pred
