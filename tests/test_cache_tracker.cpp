// Unit tests for the per-line detail tracker: word histogram placement,
// invalidation counting, the Section 2.4.3 sampling window, reuse reset, and
// virtual-line fan-out.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/cache_tracker.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;
constexpr LineGeometry kGeo{};  // 64-byte lines, 8-byte words

// Line 10 covers [640, 704).
constexpr Address kLineBase = 640;

CacheTracker make_tracker(bool lock_free = true) {
  return CacheTracker(10, kGeo, lock_free);
}

TEST(CacheTracker, RecordsWordHistogram) {
  auto t = make_tracker();
  t.handle_access(kLineBase + 0, W, 0, 10'000, 1'000'000);
  t.handle_access(kLineBase + 8, W, 1, 10'000, 1'000'000);
  t.handle_access(kLineBase + 8, R, 1, 10'000, 1'000'000);
  const auto words = t.words_snapshot();
  ASSERT_EQ(words.size(), 8u);
  EXPECT_EQ(words[0].writes, 1u);
  EXPECT_EQ(words[0].owner, 0u);
  EXPECT_EQ(words[1].writes, 1u);
  EXPECT_EQ(words[1].reads, 1u);
  EXPECT_EQ(words[1].owner, 1u);
  EXPECT_FALSE(words[2].touched());
}

TEST(CacheTracker, CountsInvalidationsAcrossWords) {
  auto t = make_tracker();
  // Different threads writing *different words* of one line still
  // invalidate: that is precisely false sharing.
  for (int i = 0; i < 10; ++i) {
    t.handle_access(kLineBase + 0, W, 0, 10'000, 1'000'000);
    t.handle_access(kLineBase + 8, W, 1, 10'000, 1'000'000);
  }
  EXPECT_EQ(t.invalidations(), 19u);  // every write after the first
}

TEST(CacheTracker, SamplingWindowLimitsDetailedTracking) {
  auto t = make_tracker();
  // Window 10 of every 100: out of 1000 accesses, 100 are recorded.
  int sampled = 0;
  for (int i = 0; i < 1000; ++i) {
    sampled += t.handle_access(kLineBase, W, 0, 10, 100).sampled ? 1 : 0;
  }
  EXPECT_EQ(sampled, 100);
  EXPECT_EQ(t.sampled_accesses(), 100u);
  EXPECT_EQ(t.total_accesses(), 1000u);
}

TEST(CacheTracker, FullSamplingRecordsEverything) {
  auto t = make_tracker();
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(t.handle_access(kLineBase, R, 0, 100, 100).sampled);
  }
  EXPECT_EQ(t.sampled_accesses(), 500u);
  EXPECT_EQ(t.sampled_reads(), 500u);
}

TEST(CacheTracker, SampledInvalidationsScaleWithRate) {
  // The paper observes lower sampling rates report fewer invalidations but
  // still detect the problem. Compare 100% vs 10% sampling on a ping-pong.
  auto full = make_tracker();
  auto sampled = make_tracker();
  for (int i = 0; i < 10000; ++i) {
    const ThreadId tid = i % 2;
    full.handle_access(kLineBase, W, tid, 1'000'000, 1'000'000);
    sampled.handle_access(kLineBase, W, tid, 100, 1000);
  }
  EXPECT_GT(full.invalidations(), 9000u);
  EXPECT_GT(sampled.invalidations(), 500u);
  EXPECT_LT(sampled.invalidations(), 2000u);
}

TEST(CacheTracker, ResetForReuseClearsRecordingState) {
  auto t = make_tracker();
  t.handle_access(kLineBase, W, 0, 10'000, 1'000'000);
  t.handle_access(kLineBase, W, 1, 10'000, 1'000'000);
  ASSERT_GT(t.invalidations(), 0u);
  t.reset_for_reuse();
  EXPECT_EQ(t.invalidations(), 0u);
  EXPECT_EQ(t.sampled_accesses(), 0u);
  for (const auto& w : t.words_snapshot()) EXPECT_FALSE(w.touched());
  // History is also clear: the next write is not an invalidation.
  t.handle_access(kLineBase, W, 2, 10'000, 1'000'000);
  EXPECT_EQ(t.invalidations(), 0u);
}

TEST(CacheTracker, VirtualLineFanOut) {
  auto t = make_tracker();
  VirtualLineTracker vl(kLineBase + 32, 64, VirtualLineTracker::Kind::kShifted,
                        10, kLineBase + 32, kLineBase + 72);
  EXPECT_FALSE(t.has_virtual_lines());
  t.add_virtual_line(&vl);
  EXPECT_TRUE(t.has_virtual_lines());
  // Only accesses inside the virtual range reach the virtual table.
  t.update_virtual_lines(kLineBase + 40, W, 0);
  t.update_virtual_lines(kLineBase + 8, W, 1);  // outside [672, 736)
  EXPECT_EQ(vl.accesses(), 1u);
}

// --- tracked-path concurrency (PR 3) --------------------------------------

// Single-OS-thread workloads must be bit-identical across the lock-free and
// spinlock modes: same invalidations, same sampled split, same word
// histogram, access by access. This is the ablation's determinism contract.
TEST(CacheTracker, ModesAgreeOnSingleThreadedDeterministicWorkload) {
  auto lf = make_tracker(/*lock_free=*/true);
  auto spin = make_tracker(/*lock_free=*/false);
  // Mixed read/write, multiple logical threads, multiple words, partial
  // sampling (window 10 of every 100) — all driven from one OS thread.
  for (int i = 0; i < 5000; ++i) {
    const ThreadId tid = static_cast<ThreadId>(i % 3);
    const AccessType type = (i % 7 < 4) ? W : R;
    const Address addr = kLineBase + (i % 5) * 8;
    const auto a = lf.handle_access(addr, type, tid, 10, 100);
    const auto b = spin.handle_access(addr, type, tid, 10, 100);
    ASSERT_EQ(a.sampled, b.sampled) << "access " << i;
    ASSERT_EQ(a.invalidated, b.invalidated) << "access " << i;
  }
  EXPECT_EQ(lf.invalidations(), spin.invalidations());
  EXPECT_EQ(lf.total_accesses(), spin.total_accesses());
  EXPECT_EQ(lf.sampled_accesses(), spin.sampled_accesses());
  EXPECT_EQ(lf.sampled_reads(), spin.sampled_reads());
  EXPECT_EQ(lf.sampled_writes(), spin.sampled_writes());
  const auto words_lf = lf.words_snapshot();
  const auto words_spin = spin.words_snapshot();
  ASSERT_EQ(words_lf.size(), words_spin.size());
  for (std::size_t w = 0; w < words_lf.size(); ++w) {
    EXPECT_EQ(words_lf[w].reads, words_spin[w].reads) << "word " << w;
    EXPECT_EQ(words_lf[w].writes, words_spin[w].writes) << "word " << w;
    EXPECT_EQ(words_lf[w].owner, words_spin[w].owner) << "word " << w;
  }
}

// N threads hammer one tracked line. Whatever the interleaving, the
// tracker's books must balance: sampled_reads + sampled_writes ==
// sampled_accesses, the word histogram totals sum to sampled_accesses
// (every sampled access records exactly one word), invalidations never
// exceed sampled writes, and owner states are only ever
// kInvalidThread -> tid -> kSharedWord.
void run_conservation(bool lock_free, std::uint64_t window,
                      std::uint64_t interval) {
  CacheTracker t(10, kGeo, lock_free);
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::uint32_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t, w, window, interval] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Each thread owns word w; every fourth access is a read; every
        // thread also pokes word 0 occasionally so one word goes shared.
        const bool shared_poke = (i % 64) == 63;
        const Address addr = kLineBase + (shared_poke ? 0 : w * 8);
        const AccessType type = (i % 4 == 0) ? R : W;
        t.handle_access(addr, type, static_cast<ThreadId>(w), window,
                        interval);
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::uint64_t sampled = t.sampled_accesses();
  EXPECT_EQ(t.sampled_reads() + t.sampled_writes(), sampled);
  EXPECT_EQ(t.total_accesses(), std::uint64_t{kThreads} * kPerThread);
  EXPECT_LE(sampled, t.total_accesses());
  EXPECT_LE(t.invalidations(), t.sampled_writes());

  std::uint64_t word_total = 0;
  const auto words = t.words_snapshot();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    word_total += words[wi].total();
    if (!words[wi].touched()) {
      EXPECT_EQ(words[wi].owner, kInvalidThread) << "word " << wi;
    } else if (wi == 0) {
      // Word 0 is poked by every thread: once shared, always shared (the
      // monotone owner state machine cannot regress to a single owner).
      EXPECT_TRUE(words[wi].owner == WordAccess::kSharedWord ||
                  words[wi].owner < kThreads)
          << "word 0 owner " << words[wi].owner;
    } else {
      // Word wi is only ever touched by thread wi.
      EXPECT_EQ(words[wi].owner, static_cast<ThreadId>(wi)) << "word " << wi;
    }
  }
  EXPECT_EQ(word_total, sampled);
}

TEST(CacheTracker, MultiThreadConservationLockFreeFullSampling) {
  run_conservation(/*lock_free=*/true, 1'000'000, 1'000'000);
}
TEST(CacheTracker, MultiThreadConservationLockFreePartialSampling) {
  run_conservation(/*lock_free=*/true, 100, 1000);
}
TEST(CacheTracker, MultiThreadConservationSpinlockFullSampling) {
  run_conservation(/*lock_free=*/false, 1'000'000, 1'000'000);
}
TEST(CacheTracker, MultiThreadConservationSpinlockPartialSampling) {
  run_conservation(/*lock_free=*/false, 100, 1000);
}

// One word hammered by many threads ends shared; a word touched by exactly
// one thread keeps that owner.
TEST(CacheTracker, OwnerWordMonotoneUnderContention) {
  auto t = make_tracker();
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&t, w] {
      for (int i = 0; i < 5000; ++i) {
        t.handle_access(kLineBase + 16, W, static_cast<ThreadId>(w),
                        1'000'000, 1'000'000);
      }
    });
  }
  for (auto& th : threads) th.join();
  t.handle_access(kLineBase + 24, W, 9, 1'000'000, 1'000'000);
  const auto words = t.words_snapshot();
  EXPECT_EQ(words[2].owner, WordAccess::kSharedWord);
  EXPECT_EQ(words[2].writes, 20000u);
  EXPECT_EQ(words[3].owner, 9u);
}

// Each OS thread's sampling stripe is owner-exclusive, so its clock is
// exact: access number n of that thread is sampled iff n % interval <
// window. From a single OS thread (one stripe) the phase *equals* the
// seed's global-counter phase, which is the determinism property the
// replay tests rely on.
TEST(CacheTracker, StripedSamplingExactFromOneThread) {
  auto t = make_tracker(/*lock_free=*/true);
  int sampled = 0;
  for (int i = 0; i < 1000; ++i) {
    // Logical tids vary; the stripe is keyed off the OS thread, so the
    // phase is still the single global order.
    sampled +=
        t.handle_access(kLineBase, W, static_cast<ThreadId>(i % 5), 10, 100)
                .sampled
            ? 1
            : 0;
  }
  EXPECT_EQ(sampled, 100);
  EXPECT_EQ(t.sampled_accesses(), 100u);
  EXPECT_EQ(t.total_accesses(), 1000u);
}

// With owner-exclusive stripes the sampling decision is exact *per thread*
// no matter how many threads hammer the tracker: each thread samples the
// first `window` of each of its own `interval`-sized runs, so the total is
// deterministic even under contention.
TEST(CacheTracker, StripedSamplingExactUnderThreads) {
  CacheTracker t(10, kGeo, /*lock_free=*/true);
  constexpr std::uint64_t kWindow = 10;
  constexpr std::uint64_t kInterval = 100;
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::uint32_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        t.handle_access(kLineBase, W, 0, kWindow, kInterval);
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::uint64_t total = std::uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(t.total_accesses(), total);
  // Per thread: (10000 / 100) intervals, `window` samples in each.
  EXPECT_EQ(t.sampled_accesses(),
            std::uint64_t{kThreads} * (kPerThread / kInterval) * kWindow);
}

// Trackers created disarmed (mid-escalation) count accesses but do not burn
// sampling-window positions until arm(); the phase starts at the first
// post-arming access.
void run_armed_gate(bool lock_free) {
  CacheTracker t(10, kGeo, lock_free, /*armed=*/false);
  for (int i = 0; i < 250; ++i) {
    EXPECT_FALSE(t.handle_access(kLineBase, W, 0, 10, 100).sampled);
  }
  EXPECT_EQ(t.sampled_accesses(), 0u);
  EXPECT_EQ(t.total_accesses(), 250u);
  t.arm();
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    sampled += t.handle_access(kLineBase, W, 0, 10, 100).sampled ? 1 : 0;
  }
  EXPECT_EQ(sampled, 10);  // a fresh interval: first 10 of 100
  EXPECT_EQ(t.total_accesses(), 350u);
}

TEST(CacheTracker, ArmedGateDefersSamplingLockFree) { run_armed_gate(true); }
TEST(CacheTracker, ArmedGateDefersSamplingSpinlock) { run_armed_gate(false); }

// Virtual-line fan-out under concurrent nomination: readers iterate an
// immutable published snapshot, so a nomination during fan-out is simply
// picked up by the next sampled access.
TEST(CacheTracker, VirtualLineSnapshotGrowsUnderFanOut) {
  auto t = make_tracker();
  std::vector<std::unique_ptr<VirtualLineTracker>> vls;
  for (int i = 0; i < 4; ++i) {
    vls.push_back(std::make_unique<VirtualLineTracker>(
        kLineBase, 64, VirtualLineTracker::Kind::kShifted, 10, kLineBase,
        kLineBase + 56));
  }
  std::atomic<bool> stop{false};
  std::thread fanout([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      t.update_virtual_lines(kLineBase + 8, W, 1);
    }
  });
  for (auto& vl : vls) {
    t.add_virtual_line(vl.get());
  }
  stop.store(true, std::memory_order_relaxed);
  fanout.join();
  t.update_virtual_lines(kLineBase + 8, W, 2);
  for (auto& vl : vls) {
    EXPECT_GE(vl->accesses(), 1u);  // every nominated line sees the tail access
  }
}

TEST(CacheTracker, PredictionBeginsExactlyOnce) {
  auto t = make_tracker();
  EXPECT_TRUE(t.try_begin_prediction());
  EXPECT_FALSE(t.try_begin_prediction());
  EXPECT_FALSE(t.try_begin_prediction());
}

TEST(VirtualLineTracker, CountsInvalidationsLikePhysicalLines) {
  VirtualLineTracker vl(128, 64, VirtualLineTracker::Kind::kDoubleLine, 2,
                        128, 184);
  for (int i = 0; i < 100; ++i) {
    vl.access(130 + (i % 2) * 50, AccessType::kWrite,
              static_cast<ThreadId>(i % 2));
  }
  EXPECT_EQ(vl.invalidations(), 99u);
  EXPECT_EQ(vl.accesses(), 100u);
}

TEST(VirtualLineTracker, ModesAgreeSingleThreaded) {
  VirtualLineTracker lf(128, 64, VirtualLineTracker::Kind::kShifted, 2, 128,
                        184, /*lock_free=*/true);
  VirtualLineTracker spin(128, 64, VirtualLineTracker::Kind::kShifted, 2, 128,
                          184, /*lock_free=*/false);
  for (int i = 0; i < 2000; ++i) {
    const Address a = 128 + (i % 8) * 8;
    const AccessType type = (i % 3 == 0) ? R : W;
    const ThreadId tid = static_cast<ThreadId>(i % 2);
    lf.access(a, type, tid);
    spin.access(a, type, tid);
  }
  EXPECT_EQ(lf.accesses(), spin.accesses());
  EXPECT_EQ(lf.invalidations(), spin.invalidations());
}

// ---------------------------------------------------------------------------
// Sync-aware suppression: the epoch/ownership word state machine
// ---------------------------------------------------------------------------

// Full-sampling arguments used by every suppression test.
constexpr std::uint64_t kWin = 10'000;
constexpr std::uint64_t kIval = 1'000'000;

TEST(SyncSuppression, FirstSyncedAccessInstallsThenHits) {
  auto t = make_tracker();
  // Fall-through installs the (tid, epoch) word; the hit then needs the
  // history automaton in the exact {tid, W} state, which the first write
  // establishes.
  auto first = t.handle_access(kLineBase, W, /*tid=*/3, kWin, kIval,
                               /*epoch=*/1);
  EXPECT_FALSE(first.suppressed);
  EXPECT_TRUE(first.sampled);
  auto second = t.handle_access(kLineBase, W, 3, kWin, kIval, 1);
  EXPECT_TRUE(second.suppressed);
  EXPECT_FALSE(second.sampled);
  // Reads by the exclusive writer are no-ops too and also suppress.
  auto read = t.handle_access(kLineBase + 8, R, 3, kWin, kIval, 1);
  EXPECT_TRUE(read.suppressed);
  EXPECT_EQ(t.suppressed_accesses(), 2u);
  EXPECT_EQ(t.sampled_accesses(), 1u);
  EXPECT_EQ(t.total_accesses(), 3u);  // sampled + suppressed, exact
}

TEST(SyncSuppression, EpochZeroNeverSuppresses) {
  auto t = make_tracker();
  // Epoch 0 means "this thread never synced": byte-for-byte the PR 3 path.
  for (int i = 0; i < 50; ++i) {
    auto out = t.handle_access(kLineBase, W, 0, kWin, kIval, /*epoch=*/0);
    EXPECT_FALSE(out.suppressed);
  }
  EXPECT_EQ(t.suppressed_accesses(), 0u);
  EXPECT_EQ(t.sampled_accesses(), 50u);
}

TEST(SyncSuppression, EpochLow16ZeroWrapsToNeverMatch) {
  auto t = make_tracker();
  // Epochs whose low 16 bits are zero pack to the reserved value: one
  // epoch per 65536 syncs falls back to the exact path — sound, never
  // wrong, and the next epoch suppresses again.
  t.handle_access(kLineBase, W, 0, kWin, kIval, 0x10000u);
  auto out = t.handle_access(kLineBase, W, 0, kWin, kIval, 0x10000u);
  EXPECT_FALSE(out.suppressed);
  t.handle_access(kLineBase, W, 0, kWin, kIval, 0x10001u);
  out = t.handle_access(kLineBase, W, 0, kWin, kIval, 0x10001u);
  EXPECT_TRUE(out.suppressed);
}

TEST(SyncSuppression, WideTidNeverSuppresses) {
  auto t = make_tracker();
  const ThreadId wide = static_cast<ThreadId>(0x800000u);  // > 23 bits
  t.handle_access(kLineBase, W, wide, kWin, kIval, 1);
  auto out = t.handle_access(kLineBase, W, wide, kWin, kIval, 1);
  EXPECT_FALSE(out.suppressed);
  EXPECT_EQ(t.suppressed_accesses(), 0u);
}

TEST(SyncSuppression, ForeignAccessBreaksOwnershipAndCostsNothingExact) {
  auto t = make_tracker();
  t.handle_access(kLineBase, W, 0, kWin, kIval, 1);
  ASSERT_TRUE(t.handle_access(kLineBase, W, 0, kWin, kIval, 1).suppressed);
  // Another thread's write: falls through (word/history mismatch), counts
  // the invalidation exactly as the unsuppressed automaton would.
  auto foreign = t.handle_access(kLineBase + 8, W, 1, kWin, kIval, 1);
  EXPECT_FALSE(foreign.suppressed);
  EXPECT_EQ(t.invalidations(), 1u);
  // The original owner now falls through too — its history state is gone —
  // and that fall-through is the second invalidation, not a miss.
  auto back = t.handle_access(kLineBase, W, 0, kWin, kIval, 1);
  EXPECT_FALSE(back.suppressed);
  EXPECT_EQ(t.invalidations(), 2u);
}

TEST(SyncSuppression, EpochRotationInvalidatesTheFastPath) {
  auto t = make_tracker();
  t.handle_access(kLineBase, W, 0, kWin, kIval, 1);
  ASSERT_TRUE(t.handle_access(kLineBase, W, 0, kWin, kIval, 1).suppressed);
  // After a sync the epoch moves: the stale word must not keep hitting.
  auto post_sync = t.handle_access(kLineBase, W, 0, kWin, kIval, 2);
  EXPECT_FALSE(post_sync.suppressed);
  // The fall-through re-installed the word at the new epoch.
  EXPECT_TRUE(t.handle_access(kLineBase, W, 0, kWin, kIval, 2).suppressed);
}

TEST(SyncSuppression, ClaimForHandoffTransfersOwnership) {
  auto t = make_tracker();
  t.handle_access(kLineBase, W, 0, kWin, kIval, 1);
  ASSERT_TRUE(t.handle_access(kLineBase, W, 0, kWin, kIval, 1).suppressed);
  // The receiver's claim is a synthetic first write: it invalidates (the
  // line changes owner) and pre-arms the receiver's fast path, standing in
  // for a first write the static pass may have pruned.
  EXPECT_TRUE(t.claim_for_handoff(/*tid=*/1, /*epoch=*/5));
  EXPECT_EQ(t.invalidations(), 1u);
  EXPECT_TRUE(t.handle_access(kLineBase + 8, W, 1, kWin, kIval, 5).suppressed);
  // A claim on an already-owned line is a no-op invalidation-wise.
  EXPECT_FALSE(t.claim_for_handoff(1, 6));
}

TEST(SyncSuppression, SpinlockModeIgnoresEpochs) {
  auto t = make_tracker(/*lock_free=*/false);
  t.handle_access(kLineBase, W, 0, kWin, kIval, 1);
  auto out = t.handle_access(kLineBase, W, 0, kWin, kIval, 1);
  EXPECT_FALSE(out.suppressed);
  EXPECT_EQ(t.suppressed_accesses(), 0u);
  // The handoff claim still keeps the history honest in spinlock mode.
  EXPECT_TRUE(t.claim_for_handoff(1, 1));
  EXPECT_EQ(t.invalidations(), 1u);
}

TEST(SyncSuppression, ResetForReuseClearsTheSyncWord) {
  auto t = make_tracker();
  t.handle_access(kLineBase, W, 0, kWin, kIval, 1);
  ASSERT_TRUE(t.handle_access(kLineBase, W, 0, kWin, kIval, 1).suppressed);
  t.reset_for_reuse();
  // Stale ownership from the previous tenant must not suppress.
  auto out = t.handle_access(kLineBase, W, 0, kWin, kIval, 1);
  EXPECT_FALSE(out.suppressed);
  EXPECT_EQ(t.suppressed_accesses(), 0u);
  EXPECT_EQ(t.total_accesses(), 1u);
}

TEST(SyncSuppression, InvalidationsIdenticalWithAndWithoutSuppression) {
  // One deterministic synced stream, replayed sequentially through both
  // signatures: suppression may drop sampled detail, but invalidation
  // counts and total accesses must be bit-identical.
  auto drive = [](bool with_epochs) {
    auto t = make_tracker();
    std::uint64_t epoch[2] = {1, 1};
    for (int round = 0; round < 6; ++round) {
      const ThreadId owner = static_cast<ThreadId>(round % 2);
      ++epoch[owner];
      t.claim_for_handoff(owner, static_cast<std::uint32_t>(epoch[owner]));
      for (int i = 0; i < 17; ++i) {
        const Address a = kLineBase + 8 * ((round + i) % 8);
        const AccessType ty = (i % 5 == 0) ? R : W;
        if (with_epochs) {
          t.handle_access(a, ty, owner, kWin, kIval,
                          static_cast<std::uint32_t>(epoch[owner]));
        } else {
          t.handle_access(a, ty, owner, kWin, kIval);
        }
      }
    }
    return std::pair<std::uint64_t, std::uint64_t>(t.invalidations(),
                                                   t.total_accesses());
  };
  const auto base = drive(false);
  const auto sync = drive(true);
  EXPECT_EQ(base.first, sync.first);    // invalidations
  EXPECT_EQ(base.second, sync.second);  // total accesses
}

TEST(SyncSuppression, ConcurrentHandoffTenuresConserveCounts) {
  // TSan-facing: rotating tenures with racing claims; every delivered
  // access must be either sampled or suppressed, never both or neither.
  auto t = std::make_unique<CacheTracker>(10, kGeo, /*lock_free=*/true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kTenures = 200;
  constexpr std::uint64_t kBurst = 32;
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&t, id] {
      for (std::uint64_t r = 0; r < kTenures; ++r) {
        const auto epoch = static_cast<std::uint32_t>(r + 1);
        t->claim_for_handoff(static_cast<ThreadId>(id), epoch);
        for (std::uint64_t i = 0; i < kBurst; ++i) {
          t->handle_access(kLineBase + 8 * (id % 8), W,
                           static_cast<ThreadId>(id), kWin, kIval, epoch);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::uint64_t total = kThreads * kTenures * kBurst;
  EXPECT_EQ(t->sampled_accesses() + t->suppressed_accesses(), total);
  EXPECT_EQ(t->total_accesses(), total);
}

TEST(VirtualLineTracker, IgnoresOutOfRange) {
  VirtualLineTracker vl(128, 64, VirtualLineTracker::Kind::kShifted, 2, 128,
                        184);
  vl.access(127, W, 0);
  vl.access(192, W, 1);
  EXPECT_EQ(vl.accesses(), 0u);
  vl.access(128, R, 0);
  vl.access(191, R, 1);
  EXPECT_EQ(vl.accesses(), 2u);
}

}  // namespace
}  // namespace pred
