// PARSEC streamcluster: the one benchmark with *two* false sharing sites in
// Table 1.
//
//  * streamcluster.cpp:985 — work_mem: the authors knew about false sharing
//    and padded per-thread slices with a CACHE_LINE macro, but its default
//    is 32 bytes — half the real line size — so two threads' slices still
//    share every line. Fix: 64-byte padding (paper: ~7.5% improvement).
//  * streamcluster.cpp:1907 — switch_membership: a bool array written by all
//    threads at per-point granularity; chunk boundaries share lines (newly
//    discovered by PREDATOR). Fix: widen elements to long (paper: ~4.8%,
//    "reduces" rather than eliminates the sharing).
//
// pgain() is called once per pass; threads visit their points in a
// data-dependent (here: pseudo-randomly permuted) order, which is what
// interleaves the boundary-line writes in practice.
#include <cstring>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class Streamcluster final : public WorkloadImpl<Streamcluster> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "streamcluster",
        .suite = "parsec",
        .sites = {{.where = "streamcluster.cpp:985",
                   .needs_prediction = false,
                   .newly_discovered = false,
                   .paper_improvement_pct = 7.52},
                  {.where = "streamcluster.cpp:1907",
                   .needs_prediction = false,
                   .newly_discovered = true,
                   .paper_improvement_pct = 4.77}},
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    // +36 keeps per-thread chunks off line boundaries at every scale
    // (8*scale + 36 is never 0 mod 64): the layout the real inputs produce.
    const std::uint64_t points_per_thread = 1000 * p.scale + 36;
    const std::uint64_t passes = 6;
    const std::uint64_t total_points = points_per_thread * n;

    // Site 0: work_mem. The "CACHE_LINE" padding constant: 32 (buggy
    // default) or 64 (the fix).
    const std::size_t cache_line_macro = p.site_fixed(0) ? 64 : 32;
    char* work_mem = static_cast<char*>(
        h.alloc(cache_line_macro * n, {"streamcluster.cpp:985"}));
    PRED_CHECK(work_mem != nullptr);
    std::memset(work_mem, 0, cache_line_macro * n);

    // Site 1: switch_membership. Element width: 1 (bool, buggy) or 8
    // (long, the fix).
    const std::size_t elem = p.site_fixed(1) ? 8 : 1;
    char* switch_membership = static_cast<char*>(
        h.alloc(total_points * elem, {"streamcluster.cpp:1907"}));
    PRED_CHECK(switch_membership != nullptr);
    std::memset(switch_membership, 0, total_points * elem);

    // Private per-thread point coordinates.
    std::vector<std::uint32_t*> coords(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      coords[t] = static_cast<std::uint32_t*>(h.alloc(
          points_per_thread * 4, {"streamcluster.cpp:coords"}));
      PRED_CHECK(coords[t] != nullptr);
      for (std::uint64_t i = 0; i < points_per_thread; ++i) {
        coords[t][i] = static_cast<std::uint32_t>(rng.next());
      }
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      auto* lower = reinterpret_cast<std::int64_t*>(
          work_mem + cache_line_macro * t);
      const std::uint64_t begin = points_per_thread * t;
      Xorshift64 order(p.seed + 17 * t + 1);
      for (std::uint64_t pass = 0; pass < passes; ++pass) {
        std::int64_t local_gain = 0;
        for (std::uint64_t k = 0; k < points_per_thread; ++k) {
          // Data-dependent visit order within the thread's chunk.
          const std::uint64_t i = order.next_below(points_per_thread);
          sink.think(600);  // gain computation: distances over all dims
          sink.read(&coords[t][i], 4);
          const std::uint32_t c = coords[t][i];
          local_gain += static_cast<std::int64_t>(c & 0xffu);
          // Cost accumulation into this thread's work_mem slice, flushed
          // every handful of points.
          if ((k & 15) == 15) {
            sink.read(lower, 8);
            *lower += local_gain;
            sink.write(lower, 8);
            local_gain = 0;
          }
          // Assignment flag for the visited point.
          char* slot = switch_membership + (begin + i) * elem;
          sink.write(slot, elem);
          *slot = static_cast<char>(c & 1u);
        }
        sink.read(lower, 8);
        *lower += local_gain;
        sink.write(lower, 8);
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      r.checksum += static_cast<std::uint64_t>(
          *reinterpret_cast<std::int64_t*>(work_mem + cache_line_macro * t));
    }
    for (std::uint64_t i = 0; i < total_points; ++i) {
      r.checksum += static_cast<std::uint64_t>(
          static_cast<unsigned char>(switch_membership[i * elem]));
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_streamcluster() {
  return std::make_unique<Streamcluster>();
}

}  // namespace pred::wl
