// Tests for the cache simulator substrate: MESI-lite state transitions,
// invalidation counting, the cost model, and the deterministic round-robin
// trace executor — including the key end-to-end property that false sharing
// costs more modeled time than a padded layout.
#include <gtest/gtest.h>

#include <cstring>
#include <unordered_set>

#include "api/predator.hpp"
#include "common/prng.hpp"
#include "sim/cache_sim.hpp"
#include "sim/executor.hpp"
#include "sim/fiber_executor.hpp"
#include "sim/numa_cache_sim.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;

TEST(CacheSim, ColdReadThenHits) {
  CacheSim sim;
  sim.on_access(0, 64, R);
  EXPECT_EQ(sim.stats().cold_misses, 1u);
  sim.on_access(0, 64, R);
  sim.on_access(0, 96, R);  // same line
  EXPECT_EQ(sim.stats().hits, 2u);
}

TEST(CacheSim, WriteHitAfterOwnership) {
  CacheSim sim;
  sim.on_access(0, 64, W);
  EXPECT_EQ(sim.stats().cold_misses, 1u);
  sim.on_access(0, 64, W);
  EXPECT_EQ(sim.stats().hits, 1u);
}

TEST(CacheSim, WriteInvalidatesRemoteReaders) {
  CacheSim sim;
  sim.on_access(0, 64, R);
  sim.on_access(1, 64, R);
  sim.on_access(2, 64, W);
  EXPECT_EQ(sim.stats().invalidations_sent, 2u);
}

TEST(CacheSim, ReadOfRemoteDirtyIsCoherenceMiss) {
  CacheSim sim;
  sim.on_access(0, 64, W);
  sim.on_access(1, 64, R);
  EXPECT_EQ(sim.stats().coherence_misses, 1u);
  // Both now hold it clean; the old owner can read without a miss.
  sim.on_access(0, 64, R);
  EXPECT_EQ(sim.stats().hits, 1u);
}

TEST(CacheSim, WritePingPongCountsCoherenceMissesEachTime) {
  CacheSim sim;
  sim.on_access(0, 64, W);
  for (int i = 1; i <= 100; ++i) sim.on_access(i % 2, 64, W);
  EXPECT_EQ(sim.stats().coherence_misses, 100u);
  EXPECT_EQ(sim.stats().invalidations_sent, 100u);
}

TEST(CacheSim, DistinctLinesDoNotInterfere) {
  CacheSim sim;
  sim.on_access(0, 0, W);
  sim.on_access(1, 64, W);
  sim.on_access(0, 0, W);
  sim.on_access(1, 64, W);
  EXPECT_EQ(sim.stats().coherence_misses, 0u);
  EXPECT_EQ(sim.stats().invalidations_sent, 0u);
  EXPECT_EQ(sim.stats().hits, 2u);
}

TEST(CacheSim, ReadOnlySharingIsCheap) {
  CacheSim sim;
  for (int i = 0; i < 100; ++i) {
    sim.on_access(static_cast<std::uint32_t>(i % 4), 128, R);
  }
  EXPECT_EQ(sim.stats().coherence_misses, 0u);
  EXPECT_EQ(sim.stats().invalidations_sent, 0u);
  EXPECT_EQ(sim.stats().cold_misses + sim.stats().shared_fetches, 4u);
}

TEST(CacheSim, CyclesAccrueToIssuingCore) {
  CacheSim sim;
  sim.on_access(3, 64, W);
  EXPECT_GT(sim.core_cycles(3), 0u);
  EXPECT_EQ(sim.core_cycles(0), 0u);
  EXPECT_EQ(sim.max_core_cycles(), sim.core_cycles(3));
}

TEST(CacheSim, ResetClearsEverything) {
  CacheSim sim;
  sim.on_access(0, 64, W);
  sim.on_access(1, 64, W);
  sim.reset();
  EXPECT_EQ(sim.stats().accesses, 0u);
  EXPECT_EQ(sim.max_core_cycles(), 0u);
  sim.on_access(1, 64, W);
  EXPECT_EQ(sim.stats().cold_misses, 1u);  // state forgotten
}

TEST(Executor, RoundRobinInterleavesDeterministically) {
  // Two threads ping-pong writes to one line: with quantum 1 every write
  // after the first is a coherence miss.
  ThreadTrace t0, t1;
  for (int i = 0; i < 50; ++i) {
    t0.push_back({1024, 0, W, 8});
    t1.push_back({1032, 0, W, 8});  // same line, different word
  }
  const std::vector<ThreadTrace> traces{t0, t1};
  CacheSim sim;
  const SimStats stats = simulate_interleaved(sim, traces, 1);
  EXPECT_EQ(stats.accesses, 100u);
  EXPECT_EQ(stats.coherence_misses, 99u);

  // Re-running with identical inputs gives identical results.
  CacheSim sim2;
  const SimStats stats2 = simulate_interleaved(sim2, traces, 1);
  EXPECT_EQ(stats2.coherence_misses, stats.coherence_misses);
  EXPECT_EQ(sim2.max_core_cycles(), sim.max_core_cycles());
}

TEST(Executor, CoarserQuantumReducesPingPong) {
  ThreadTrace t0, t1;
  for (int i = 0; i < 1000; ++i) {
    t0.push_back({1024, 0, W, 8});
    t1.push_back({1032, 0, W, 8});
  }
  const std::vector<ThreadTrace> traces{t0, t1};
  CacheSim fine, coarse;
  simulate_interleaved(fine, traces, 1);
  simulate_interleaved(coarse, traces, 100);
  EXPECT_GT(fine.stats().coherence_misses,
            10 * coarse.stats().coherence_misses);
}

TEST(Executor, UnevenTracesDrainCompletely) {
  ThreadTrace t0, t1;
  for (int i = 0; i < 10; ++i) t0.push_back({64, 0, R, 8});
  for (int i = 0; i < 500; ++i) t1.push_back({128, 0, R, 8});
  const std::vector<ThreadTrace> traces{t0, t1};
  CacheSim sim;
  const SimStats stats = simulate_interleaved(sim, traces, 7);
  EXPECT_EQ(stats.accesses, 510u);
}

TEST(Executor, ThreadsMapToCoresModulo) {
  SimConfig cfg;
  cfg.num_cores = 2;
  CacheSim sim(cfg);
  // Threads 0 and 2 share core 0: their "sharing" is free (same cache).
  ThreadTrace a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back({2048, 0, W, 8});
    b.push_back({2056, 0, W, 8});
  }
  std::vector<ThreadTrace> traces{a, ThreadTrace{}, b};
  const SimStats stats = simulate_interleaved(sim, traces, 1);
  EXPECT_EQ(stats.coherence_misses, 0u);
}

TEST(Executor, FalseSharingCostsMoreThanPaddedLayout) {
  // The core Figure 2 mechanism: same access count, different layout.
  auto make_traces = [](std::size_t stride) {
    std::vector<ThreadTrace> traces(4);
    for (std::size_t t = 0; t < 4; ++t) {
      for (int i = 0; i < 2000; ++i) {
        traces[t].push_back(
            {static_cast<Address>(4096 + stride * t), 0, W, 8});
      }
    }
    return traces;
  };
  CacheSim shared_sim, padded_sim;
  simulate_interleaved(shared_sim, make_traces(8), 1);   // one line
  simulate_interleaved(padded_sim, make_traces(64), 1);  // one line each
  EXPECT_GT(shared_sim.max_core_cycles(), 10 * padded_sim.max_core_cycles());
}

// ---------------------------------------------------------------------------
// Two-level NUMA simulator: unit behavior
// ---------------------------------------------------------------------------

NumaConfig one_socket(std::uint32_t cores) {
  NumaConfig c;
  c.sockets = 1;
  c.cores_per_socket = cores;
  return c;
}

NumaConfig two_by_four(NumaPlacement placement = NumaPlacement::kCompact,
                       double remote_factor = 3.0) {
  NumaConfig c;
  c.sockets = 2;
  c.cores_per_socket = 4;
  c.placement = placement;
  c.remote_factor = remote_factor;
  return c;
}

TEST(NumaCacheSim, PlacementMapsCoresToSockets) {
  NumaConfig compact = two_by_four(NumaPlacement::kCompact);
  EXPECT_EQ(compact.socket_of(0), 0u);
  EXPECT_EQ(compact.socket_of(3), 0u);
  EXPECT_EQ(compact.socket_of(4), 1u);
  EXPECT_EQ(compact.socket_of(7), 1u);
  NumaConfig scatter = two_by_four(NumaPlacement::kScatter);
  EXPECT_EQ(scatter.socket_of(0), 0u);
  EXPECT_EQ(scatter.socket_of(1), 1u);
  EXPECT_EQ(scatter.socket_of(6), 0u);
  EXPECT_EQ(scatter.socket_of(7), 1u);
}

TEST(NumaCacheSim, RemoteDirtyTransferCostsRemoteFactorMore) {
  // Cores 0/1 share a socket; cores 0/4 sit on different sockets (compact).
  NumaCacheSim local(two_by_four());
  local.on_access(0, 64, W);
  const std::uint64_t local_read = local.on_access(1, 64, R);

  NumaCacheSim remote(two_by_four());
  remote.on_access(0, 64, W);
  const std::uint64_t remote_read = remote.on_access(4, 64, R);

  EXPECT_EQ(local_read, remote.config().coherence_miss_cost);
  EXPECT_EQ(remote_read, 3 * local_read);
  EXPECT_EQ(remote.stats().remote_coherence_misses, 1u);
  EXPECT_EQ(local.stats().remote_coherence_misses, 0u);
}

TEST(NumaCacheSim, CrossSocketInvalidationsAreCountedAndPriced) {
  NumaCacheSim sim(two_by_four());
  sim.on_access(0, 64, R);   // socket 0
  sim.on_access(4, 64, R);   // socket 1
  const std::uint64_t cost = sim.on_access(1, 64, W);  // socket 0 writes
  EXPECT_EQ(sim.stats().invalidations_sent, 2u);
  EXPECT_EQ(sim.stats().remote_invalidations_sent, 1u);  // core 4's copy
  EXPECT_EQ(sim.line_remote_invalidations(64), 1u);
  // The upgrade pays the remote shared-fetch (socket 1 held a copy, so the
  // invalidation round-trip crosses the interconnect: 3 * 80), plus one
  // local kill (100) and one remote kill (300).
  EXPECT_EQ(cost, 3 * sim.config().shared_fetch_cost + 100 + 300);
}

TEST(NumaCacheSim, DirectoryTracksSocketEntryAndWriteTakeover) {
  NumaCacheSim sim(two_by_four());
  sim.on_access(0, 64, R);
  const auto p1 = sim.probe_line(64);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->socket_copies, 0b01u);
  sim.on_access(4, 64, R);
  const auto p2 = sim.probe_line(64);
  EXPECT_EQ(p2->socket_copies, 0b11u);
  sim.on_access(4, 64, W);
  const auto p3 = sim.probe_line(64);
  EXPECT_EQ(p3->socket_copies, 0b10u);  // socket 0 dropped by the write
  EXPECT_EQ(p3->owner_socket, 1);
  EXPECT_GE(sim.stats().directory_transitions, 3u);
  EXPECT_GE(sim.stats().directory_invalidations, 1u);
}

TEST(NumaCacheSim, CoarseLlcGrainKillsSiblingLines) {
  // 128-byte LLC lines over 64-byte private lines: a write to the first
  // private line evicts remote sockets' copies of the second one too.
  NumaConfig cfg = two_by_four();
  cfg.llc_line_size = 128;
  NumaCacheSim sim(cfg);
  sim.on_access(4, 64, R);  // socket 1 caches the sibling private line
  sim.on_access(0, 0, W);   // socket 0 writes the other half of the LLC line
  EXPECT_EQ(sim.stats().llc_sibling_invalidations, 1u);
  // Core 4 lost its copy: the next read is a miss, not a hit.
  const std::uint64_t hits_before = sim.stats().hits;
  sim.on_access(4, 64, R);
  EXPECT_EQ(sim.stats().hits, hits_before);
}

TEST(NumaCacheSim, NoSiblingKillsAtMatchedLineSizes) {
  NumaCacheSim sim(two_by_four());
  sim.on_access(4, 64, R);
  sim.on_access(0, 0, W);
  EXPECT_EQ(sim.stats().llc_sibling_invalidations, 0u);
  sim.on_access(4, 64, R);
  EXPECT_GT(sim.stats().hits, 0u);
}

// ---------------------------------------------------------------------------
// Differential regression: 1-socket NumaCacheSim ≡ flat CacheSim, bit for
// bit, across the full workload registry (the ISSUE's flat-equivalence
// guarantee — any divergence is a bug in the directory path).
// ---------------------------------------------------------------------------

TEST(NumaDifferential, OneSocketBitIdenticalToFlatAcrossRegistry) {
  for (const auto& w : wl::all_workloads()) {
    const std::string& name = w->traits().name;
    SessionOptions o;
    o.heap_size = 32 * 1024 * 1024;
    Session session(o);
    wl::Params p;
    p.threads = 8;
    const auto traces = w->capture(session, p);

    CacheSim flat;  // 8 cores, default costs
    NumaCacheSim numa(one_socket(8));
    simulate_interleaved(flat, traces, 1);
    simulate_interleaved(numa, traces, 1);

    const SimStats& f = flat.stats();
    const NumaStats& n = numa.stats();
    EXPECT_EQ(f.accesses, n.accesses) << name;
    EXPECT_EQ(f.hits, n.hits) << name;
    EXPECT_EQ(f.cold_misses, n.cold_misses) << name;
    EXPECT_EQ(f.shared_fetches, n.shared_fetches) << name;
    EXPECT_EQ(f.coherence_misses, n.coherence_misses) << name;
    EXPECT_EQ(f.invalidations_sent, n.invalidations_sent) << name;
    EXPECT_EQ(f.total_cycles, n.total_cycles) << name;
    for (std::uint32_t c = 0; c < 8; ++c) {
      EXPECT_EQ(flat.core_cycles(c), numa.core_cycles(c))
          << name << " core " << c;
    }
    // Per-line invalidation counts over every line either sim touched.
    std::unordered_set<std::size_t> lines;
    for (const auto& t : traces) {
      for (const auto& ev : t) lines.insert(ev.addr / 64);
    }
    for (const std::size_t line : lines) {
      EXPECT_EQ(flat.line_invalidations(line * 64),
                numa.line_invalidations(line * 64))
          << name << " line " << line;
    }
    // At one socket nothing can be remote.
    EXPECT_EQ(n.remote_coherence_misses, 0u) << name;
    EXPECT_EQ(n.remote_shared_fetches, 0u) << name;
    EXPECT_EQ(n.remote_cold_misses, 0u) << name;
    EXPECT_EQ(n.remote_invalidations_sent, 0u) << name;
    EXPECT_EQ(n.llc_sibling_invalidations, 0u) << name;
  }
}

TEST(NumaDifferential, ConcurrentExecutorAgreesAtOneSocketToo) {
  const wl::Workload* w = wl::find_workload("numa_pingpong");
  ASSERT_NE(w, nullptr);
  SessionOptions o;
  o.heap_size = 8 * 1024 * 1024;
  Session session(o);
  wl::Params p;
  p.threads = 8;
  const auto traces = w->capture(session, p);

  CacheSim flat;
  NumaCacheSim numa(one_socket(8));
  const ConcurrentResult rf = simulate_concurrent(flat, traces);
  const ConcurrentResult rn = simulate_concurrent(numa, traces);
  EXPECT_EQ(rf.finish_cycles, rn.finish_cycles);
  EXPECT_EQ(rf.stats.coherence_misses, rn.stats.coherence_misses);
  EXPECT_EQ(rf.stats.total_cycles, rn.stats.total_cycles);
}

// ---------------------------------------------------------------------------
// Big-machine scenarios: the same trace costs ≥2x when the ping-pong
// crosses sockets, while the *event counts* stay topology-invariant.
// ---------------------------------------------------------------------------

TEST(NumaBigMachine, PingPongCostsAtLeastTwiceAsMuchAcrossSockets) {
  const wl::Workload* w = wl::find_workload("numa_pingpong");
  ASSERT_NE(w, nullptr);
  SessionOptions o;
  o.heap_size = 8 * 1024 * 1024;
  Session session(o);
  wl::Params p;
  p.threads = 8;
  const auto traces = w->capture(session, p);

  NumaCacheSim local(one_socket(8));
  NumaCacheSim remote(two_by_four(NumaPlacement::kScatter, 3.0));
  simulate_interleaved(local, traces, 1);
  simulate_interleaved(remote, traces, 1);

  // ≥2x cycle cost for remote vs local ping-pong (ISSUE acceptance bar).
  EXPECT_GE(remote.max_core_cycles(), 2 * local.max_core_cycles());
  EXPECT_GE(remote.stats().total_cycles, 2 * local.stats().total_cycles);
  EXPECT_GT(remote.stats().remote_invalidations_sent, 0u);
  EXPECT_GT(remote.stats().remote_coherence_misses, 0u);

  // Topology scales costs, never event counts.
  EXPECT_EQ(local.stats().coherence_misses, remote.stats().coherence_misses);
  EXPECT_EQ(local.stats().invalidations_sent,
            remote.stats().invalidations_sent);
  EXPECT_EQ(local.stats().hits, remote.stats().hits);
}

TEST(NumaBigMachine, PaddedPingPongEscapesTheRemotePenalty) {
  const wl::Workload* w = wl::find_workload("numa_pingpong");
  ASSERT_NE(w, nullptr);
  SessionOptions o;
  o.heap_size = 8 * 1024 * 1024;
  Session s_buggy(o), s_fixed(o);
  wl::Params p;
  p.threads = 8;
  const auto buggy = w->capture(s_buggy, p);
  p.fix_mask = ~0u;
  const auto fixed = w->capture(s_fixed, p);

  NumaCacheSim sim_buggy(two_by_four(NumaPlacement::kScatter, 3.0));
  NumaCacheSim sim_fixed(two_by_four(NumaPlacement::kScatter, 3.0));
  simulate_interleaved(sim_buggy, buggy, 1);
  simulate_interleaved(sim_fixed, fixed, 1);
  EXPECT_GT(sim_buggy.max_core_cycles(), 10 * sim_fixed.max_core_cycles());
  EXPECT_EQ(sim_fixed.stats().remote_invalidations_sent, 0u);
}

// ---------------------------------------------------------------------------
// Directory-protocol property tests: randomized access streams over ≥64
// seeds, checked against a sequential oracle fold of the recorded global
// access order.
// ---------------------------------------------------------------------------

std::vector<ThreadTrace> random_traces(std::uint64_t seed) {
  Xorshift64 rng(seed * 7919 + 1);
  std::vector<ThreadTrace> traces(8);
  for (auto& t : traces) {
    const std::size_t events = 40 + rng.next_below(40);
    for (std::size_t i = 0; i < events; ++i) {
      // Six hot lines with word-granular offsets; ~40% writes.
      const Address addr = 4096 + rng.next_below(6) * 64 +
                           rng.next_below(8) * 8;
      const AccessType type = rng.next_below(10) < 4 ? W : R;
      t.push_back({addr, 0, type, 8});
    }
  }
  return traces;
}

TEST(DirectoryProperty, ConservationInvariantsHoldOver64Seeds) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const auto traces = random_traces(seed);
    std::size_t total_events = 0;
    for (const auto& t : traces) total_events += t.size();
    const NumaConfig cfg = two_by_four(
        seed % 2 ? NumaPlacement::kScatter : NumaPlacement::kCompact,
        2.0 + static_cast<double>(seed % 3));

    NumaCacheSim sim(cfg);
    std::vector<GlobalAccess> order;
    simulate_fibers(sim, traces, seed, &order);
    ASSERT_EQ(order.size(), total_events) << "seed " << seed;

    // Oracle fold: replaying the recorded order sequentially through a
    // fresh simulator reproduces the fiber run exactly — per-line
    // invalidation totals included, whatever the interleaving was.
    NumaCacheSim oracle(cfg);
    replay_global_order(oracle, order);
    EXPECT_EQ(0, std::memcmp(&oracle.stats(), &sim.stats(),
                             sizeof(NumaStats)))
        << "seed " << seed;
    for (int line = 0; line < 6; ++line) {
      const Address a = 4096 + static_cast<Address>(line) * 64;
      EXPECT_EQ(oracle.line_invalidations(a), sim.line_invalidations(a))
          << "seed " << seed << " line " << line;
      EXPECT_EQ(oracle.line_remote_invalidations(a),
                sim.line_remote_invalidations(a))
          << "seed " << seed << " line " << line;
    }

    // Cross-implementation oracle: the flat simulator folding the same
    // order must agree on every topology-independent event count.
    SimConfig flat_cfg;
    flat_cfg.num_cores = 8;
    CacheSim flat(flat_cfg);
    for (const GlobalAccess& a : order) flat.on_access(a.core, a.addr, a.type);
    EXPECT_EQ(flat.stats().hits, sim.stats().hits) << "seed " << seed;
    EXPECT_EQ(flat.stats().cold_misses, sim.stats().cold_misses)
        << "seed " << seed;
    EXPECT_EQ(flat.stats().shared_fetches, sim.stats().shared_fetches)
        << "seed " << seed;
    EXPECT_EQ(flat.stats().coherence_misses, sim.stats().coherence_misses)
        << "seed " << seed;
    EXPECT_EQ(flat.stats().invalidations_sent, sim.stats().invalidations_sent)
        << "seed " << seed;

    // Per-access invariant: every cross-socket invalidation is matched by a
    // directory state transition in the same access.
    NumaCacheSim step(cfg);
    for (const GlobalAccess& a : order) {
      const NumaStats before = step.stats();
      step.on_access(a.core, a.addr, a.type);
      const NumaStats& after = step.stats();
      if (after.remote_invalidations_sent > before.remote_invalidations_sent) {
        ASSERT_GT(after.directory_transitions, before.directory_transitions)
            << "seed " << seed
            << ": cross-socket invalidation without a directory transition";
      }
    }

    // Line-state consistency: a line is never dirty in two sockets, and the
    // directory's socket mask covers every core holding a copy.
    for (int line = 0; line < 6; ++line) {
      const auto probe = sim.probe_line(4096 + static_cast<Address>(line) * 64);
      if (!probe.has_value()) continue;
      if (probe->owner_core >= 0) {
        EXPECT_TRUE(probe->sharer_cores.empty())
            << "seed " << seed << ": dirty line with clean sharers";
        EXPECT_EQ(probe->owner_socket,
                  static_cast<std::int32_t>(cfg.socket_of(
                      static_cast<std::uint32_t>(probe->owner_core))))
            << "seed " << seed;
      }
      std::uint32_t holder_sockets = 0;
      for (const std::uint32_t c : probe->sharer_cores) {
        holder_sockets |= 1u << cfg.socket_of(c);
      }
      if (probe->owner_core >= 0) {
        holder_sockets |=
            1u << cfg.socket_of(static_cast<std::uint32_t>(probe->owner_core));
      }
      EXPECT_EQ(holder_sockets & ~probe->socket_copies, 0u)
          << "seed " << seed << ": core holds a copy its socket's directory "
          << "entry does not record";
    }
  }
}

TEST(TraceRecorder, CapturesTypesSizesAndAddresses) {
  TraceRecorder rec;
  int x = 0;
  rec.on_read(&x, 4);
  rec.on_write(&x, 4);
  const ThreadTrace trace = rec.take();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].type, R);
  EXPECT_EQ(trace[1].type, W);
  EXPECT_EQ(trace[0].addr, reinterpret_cast<Address>(&x));
  EXPECT_EQ(trace[0].size, 4u);
}

}  // namespace
}  // namespace pred
