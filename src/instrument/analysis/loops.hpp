// Natural loop discovery: back-edges (edges whose target dominates their
// source) anchor loops; the loop body is everything that reaches the latch
// without passing through the header. Loops sharing a header are merged,
// nesting depth counts enclosing loops, and a preheader — the unique
// fall-through predecessor outside the loop — is identified when it exists,
// since that is where the batching pass parks hoisted reports.
#pragma once

#include <cstdint>
#include <vector>

#include "instrument/analysis/cfg.hpp"
#include "instrument/analysis/dominators.hpp"

namespace pred::ir {

struct NaturalLoop {
  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::uint32_t header = 0;
  std::vector<std::uint32_t> blocks;   ///< sorted; includes the header
  std::vector<std::uint32_t> latches;  ///< back-edge sources
  std::uint32_t preheader = kNone;     ///< see file comment
  std::uint32_t depth = 1;             ///< 1 = outermost

  bool contains(std::uint32_t b) const;
};

/// All natural loops of the (reducible parts of the) CFG, one entry per
/// header, outermost-first within a nest.
std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg,
                                            const DomTree& dom);

}  // namespace pred::ir
