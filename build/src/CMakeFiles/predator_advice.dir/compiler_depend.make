# Empty compiler generated dependencies file for predator_advice.
# This may be replaced when dependencies are built.
