// Span ownership registry: which logical thread owns each heap span. The
// per-thread heaps (thread_heap.hpp) carve line-aligned spans out of the
// shared region and — by the Hoard-style discipline of Section 2.3.2 —
// objects of different threads never share a physical cache line. This map
// records that carving so the thread-escape analysis
// (instrument/analysis/escape.hpp) can PROVE an address range confined to
// one thread's span: accesses to such ranges can never participate in a
// cross-thread invalidation and may skip instrumentation entirely.
#pragma once

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"

namespace pred {

class OwnershipMap {
 public:
  struct Span {
    Address base = 0;
    std::size_t len = 0;
    ThreadId owner = kInvalidThread;

    bool contains(Address a) const { return a >= base && a < base + len; }
  };

  /// Records a freshly carved span as owned by `owner`. Spans come from the
  /// region's bump cursor, so they never overlap.
  void record_span(Address base, std::size_t len, ThreadId owner) {
    if (base == 0 || len == 0) return;
    std::lock_guard<Spinlock> g(lock_);
    const auto it = std::lower_bound(
        spans_.begin(), spans_.end(), base,
        [](const Span& s, Address b) { return s.base < b; });
    spans_.insert(it, Span{base, len, owner});
  }

  /// The span containing `a`, if any.
  std::optional<Span> span_of(Address a) const {
    std::lock_guard<Spinlock> g(lock_);
    auto it = std::upper_bound(
        spans_.begin(), spans_.end(), a,
        [](Address b, const Span& s) { return b < s.base; });
    if (it == spans_.begin()) return std::nullopt;
    --it;
    if (!it->contains(a)) return std::nullopt;
    return *it;
  }

  /// Owner of the whole range [a, a + len) — only when it sits inside one
  /// recorded span (a range straddling spans could straddle owners).
  std::optional<ThreadId> owner_of(Address a, std::size_t len = 1) const {
    const auto s = span_of(a);
    if (!s || len == 0 || a + len > s->base + s->len) return std::nullopt;
    return s->owner;
  }

  std::size_t num_spans() const {
    std::lock_guard<Spinlock> g(lock_);
    return spans_.size();
  }

 private:
  mutable Spinlock lock_;
  std::vector<Span> spans_;  // sorted by base, non-overlapping
};

}  // namespace pred
