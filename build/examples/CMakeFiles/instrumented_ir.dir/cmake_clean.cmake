file(REMOVE_RECURSE
  "CMakeFiles/instrumented_ir.dir/instrumented_ir.cpp.o"
  "CMakeFiles/instrumented_ir.dir/instrumented_ir.cpp.o.d"
  "instrumented_ir"
  "instrumented_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumented_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
