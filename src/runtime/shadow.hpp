// Shadow memory for one tracked region (Section 2.3.2, "Optimizing Metadata
// Lookup"): metadata for an address is found by pure address arithmetic.
// Two side arrays exist per region, exactly as in the paper's Section 2.4.1:
//   CacheWrites   — per-line write counters driving TrackingThreshold,
//   CacheTracking — per-line pointers to lazily allocated CacheTrackers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cacheline.hpp"
#include "common/check.hpp"
#include "common/spinlock.hpp"
#include "runtime/cache_tracker.hpp"

namespace pred {

class ShadowSpace {
 public:
  /// `lock_free_trackers` selects the tracked-path implementation for every
  /// tracker this region allocates (RuntimeConfig::lock_free_tracker).
  ShadowSpace(Address base, std::size_t size, const LineGeometry& geometry,
              bool lock_free_trackers = true)
      : base_(geometry.line_base(base)),
        geometry_(geometry),
        num_lines_((base + size - base_ + geometry.line_size - 1) /
                   geometry.line_size),
        lock_free_trackers_(lock_free_trackers),
        writes_(num_lines_),
        tracking_(num_lines_) {
    PRED_CHECK(size > 0);
    for (auto& w : writes_) w.store(0, std::memory_order_relaxed);
    for (auto& t : tracking_) t.store(nullptr, std::memory_order_relaxed);
  }

  bool contains(Address a) const {
    return a >= base_ && a < base_ + num_lines_ * geometry_.line_size;
  }

  std::size_t line_index(Address a) const {
    return (a - base_) / geometry_.line_size;
  }
  Address line_start(std::size_t idx) const {
    return base_ + idx * geometry_.line_size;
  }
  std::size_t num_lines() const { return num_lines_; }
  Address base() const { return base_; }
  const LineGeometry& geometry() const { return geometry_; }

  std::atomic<std::uint64_t>& writes(std::size_t idx) { return writes_[idx]; }
  std::uint64_t writes_count(std::size_t idx) const {
    return writes_[idx].load(std::memory_order_relaxed);
  }

  CacheTracker* tracker(std::size_t idx) const {
    return tracking_[idx].load(std::memory_order_acquire);
  }

  /// Allocates (or returns the existing) tracker for a line. Mirrors the
  /// allocCacheTrack + ATOMIC_CAS sequence of Figure 1. `armed = false`
  /// creates the tracker with its sampling clock gated; the caller arms it
  /// once escalation bookkeeping completes (Runtime::ensure_tracked_line).
  CacheTracker* ensure_tracker(std::size_t idx, bool armed = true) {
    CacheTracker* existing = tracking_[idx].load(std::memory_order_acquire);
    if (existing) return existing;
    auto fresh = std::make_unique<CacheTracker>(idx, geometry_,
                                                lock_free_trackers_, armed);
    CacheTracker* raw = fresh.get();
    CacheTracker* expected = nullptr;
    if (tracking_[idx].compare_exchange_strong(expected, raw,
                                               std::memory_order_acq_rel)) {
      std::lock_guard<Spinlock> g(arena_lock_);
      arena_.push_back(std::move(fresh));
      return raw;
    }
    return expected;  // another thread won the race; ours is freed here
  }

  /// Invokes fn(line_index, tracker) for every escalated line.
  template <typename F>
  void for_each_tracker(F&& fn) const {
    for (std::size_t i = 0; i < num_lines_; ++i) {
      if (CacheTracker* t = tracking_[i].load(std::memory_order_acquire)) {
        fn(i, t);
      }
    }
  }

  std::size_t tracker_count() const {
    std::lock_guard<Spinlock> g(arena_lock_);
    return arena_.size();
  }

  /// Bytes of shadow metadata attributable to this region (the two side
  /// arrays plus allocated trackers, including the trackers' lazily-grown
  /// per-thread sampling stripes). Feeds the Figure 8/9 accounting.
  std::size_t metadata_bytes() const {
    std::size_t bytes = num_lines_ * (sizeof(std::atomic<std::uint64_t>) +
                                      sizeof(std::atomic<CacheTracker*>));
    std::lock_guard<Spinlock> g(arena_lock_);
    for (const auto& tracker : arena_) bytes += tracker->metadata_bytes();
    return bytes;
  }

 private:
  const Address base_;
  const LineGeometry geometry_;
  const std::size_t num_lines_;
  const bool lock_free_trackers_;
  std::vector<std::atomic<std::uint64_t>> writes_;
  std::vector<std::atomic<CacheTracker*>> tracking_;
  mutable Spinlock arena_lock_;
  std::vector<std::unique_ptr<CacheTracker>> arena_;
};

}  // namespace pred
