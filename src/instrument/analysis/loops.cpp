#include "instrument/analysis/loops.hpp"

#include <algorithm>

namespace pred::ir {

bool NaturalLoop::contains(std::uint32_t b) const {
  return std::binary_search(blocks.begin(), blocks.end(), b);
}

std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg,
                                            const DomTree& dom) {
  std::vector<NaturalLoop> loops;

  // One loop per header; bodies of multiple back-edges to one header merge.
  for (std::uint32_t b : cfg.reverse_postorder()) {
    for (std::uint32_t s : cfg.succs(b)) {
      if (!dom.dominates(s, b)) continue;  // not a back-edge
      const std::uint32_t header = s;
      auto it = std::find_if(loops.begin(), loops.end(), [&](const auto& l) {
        return l.header == header;
      });
      if (it == loops.end()) {
        loops.push_back(NaturalLoop{});
        it = std::prev(loops.end());
        it->header = header;
        it->blocks.push_back(header);
      }
      it->latches.push_back(b);
      // Backward flood from the latch, stopping at the header.
      std::vector<std::uint32_t> stack{b};
      while (!stack.empty()) {
        const std::uint32_t n = stack.back();
        stack.pop_back();
        if (std::find(it->blocks.begin(), it->blocks.end(), n) !=
            it->blocks.end()) {
          continue;
        }
        it->blocks.push_back(n);
        for (std::uint32_t p : cfg.preds(n)) {
          if (cfg.reachable(p)) stack.push_back(p);
        }
      }
    }
  }

  for (NaturalLoop& l : loops) {
    std::sort(l.blocks.begin(), l.blocks.end());
    std::sort(l.latches.begin(), l.latches.end());
  }

  // Nesting depth: one per enclosing loop whose body contains this header
  // (every block of a nested loop, its header included, belongs to the
  // enclosing loop's body).
  for (NaturalLoop& l : loops) {
    for (const NaturalLoop& outer : loops) {
      if (outer.header != l.header && outer.contains(l.header)) ++l.depth;
    }
  }

  // Preheader: the unique predecessor of the header from outside the loop,
  // provided it transfers control nowhere else.
  for (NaturalLoop& l : loops) {
    std::uint32_t candidate = NaturalLoop::kNone;
    bool unique = true;
    for (std::uint32_t p : cfg.preds(l.header)) {
      if (l.contains(p)) continue;  // a latch
      if (candidate != NaturalLoop::kNone) unique = false;
      candidate = p;
    }
    if (unique && candidate != NaturalLoop::kNone &&
        cfg.succs(candidate).size() == 1) {
      l.preheader = candidate;
    }
  }

  std::sort(loops.begin(), loops.end(),
            [](const NaturalLoop& a, const NaturalLoop& b) {
              return a.depth != b.depth ? a.depth < b.depth
                                        : a.header < b.header;
            });
  return loops;
}

}  // namespace pred::ir
