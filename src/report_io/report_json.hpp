// Report export: serializes a PREDATOR report (and optionally the fix
// advisor's suggestions) to JSON for CI gates, dashboards, and diffing
// across runs. Schema:
//
// {
//   "total_invalidations": N,
//   "findings": [{
//     "rank": 1, "kind": "FALSE SHARING", "observed": true,
//     "predicted": false,
//     "object": {"start": "0x...", "size": N, "global": false,
//                "name": "...", "callsite": ["frame", ...]},
//     "invalidations": N, "predicted_invalidations": N,
//     "accesses": N, "writes": N,
//     "words": [{"address": "0x...", "reads": N, "writes": N,
//                "owner": T | "shared"}, ...],
//     "virtual_lines": [{"start": "0x...", "size": N, "kind": "...",
//                        "invalidations": N}, ...]
//   }, ...],
//   "suggestions": [...]   // only when advice is supplied
// }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "advice/fix_advisor.hpp"
#include "runtime/callsite.hpp"
#include "runtime/report.hpp"

namespace pred {

std::string report_to_json(
    const Report& report, const CallsiteTable& callsites,
    const std::vector<FixSuggestion>* suggestions = nullptr);

}  // namespace pred
