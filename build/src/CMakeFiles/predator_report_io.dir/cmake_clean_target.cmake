file(REMOVE_RECURSE
  "libpredator_report_io.a"
)
