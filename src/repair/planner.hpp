// Plan compilation: FixSuggestions (advice/fix_advisor) are matched back to
// the report findings they were derived from and lowered into RepairPlan
// entries keyed by stable site identity. Suggestions without a layout fix
// (true sharing) or without a stable identity (unattributed heap objects)
// compile to nothing.
#pragma once

#include <string>
#include <vector>

#include "advice/fix_advisor.hpp"
#include "instrument/analysis/predict.hpp"
#include "repair/plan.hpp"
#include "runtime/callsite.hpp"
#include "runtime/report.hpp"

namespace pred::repair {

struct PlannerOptions {
  std::size_t line_size = 64;
  /// Offset-evidence words kept per entry (the hottest first).
  std::size_t max_evidence = 16;
};

/// Compiles suggestions into an applicable plan. `report` supplies the
/// word-level evidence; `callsites` resolves heap objects to their stable
/// site keys. Entries are deduplicated by site (several findings of one
/// callsite — e.g. many 16-byte counters packed by one allocation loop —
/// become one directive).
RepairPlan compile_plan(const Report& report,
                        const std::vector<FixSuggestion>& suggestions,
                        const CallsiteTable& callsites,
                        const PlannerOptions& options = {});

/// Human-readable plan listing (one block per entry).
std::string format_plan(const RepairPlan& plan);

// ---------------------------------------------------------------------------
// Static lowering: StaticFsReport -> RepairPlan (no profiling run)
// ---------------------------------------------------------------------------

/// Names a shared region of a static prediction so its plan entry carries a
/// stable site identity (index == ir::RoleSpec::region).
struct StaticRegion {
  std::string name;
  bool is_global = true;
};

/// Lowers a static prediction into plan entries, one per named region with
/// at least one non-latent FALSE-sharing line at the planner's line size.
/// A region whose written footprints form uniform slots (detected stride)
/// compiles to kPadSlots with the stride padded to a line; anything else to
/// kAlignStart. Evidence words come from the hottest predicted lines' role
/// spans (owner = role id, writes = predicted write weight), so downstream
/// consumers see the same evidence shape a profiled plan carries. True-
/// sharing-only regions compile to nothing — padding cannot fix them.
RepairPlan compile_plan(const ir::StaticFsReport& report,
                        const std::vector<StaticRegion>& regions,
                        const PlannerOptions& options = {});

}  // namespace pred::repair
