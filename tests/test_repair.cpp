// Tests for the closed-loop repair subsystem (src/repair/): lossless plan
// codec round-trips with forward compatibility and corruption rejection,
// plan compilation from advisor output, both plan backends (allocator
// padding and the IR rewrite) in isolation, the full detect -> plan ->
// apply -> verify loop on the planted targets, collector plan merging, and
// the stale-socket reclaim in listen_unix.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "advice/fix_advisor.hpp"
#include "api/predator.hpp"
#include "collect/collector.hpp"
#include "collect/transport.hpp"
#include "instrument/analysis/generator.hpp"
#include "instrument/interp.hpp"
#include "instrument/pass.hpp"
#include "repair/plan.hpp"
#include "repair/plan_codec.hpp"
#include "repair/planner.hpp"
#include "repair/targets.hpp"
#include "repair/verifier.hpp"
#include "trace/wire_format.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

repair::RepairPlan sample_plan() {
  repair::RepairPlan plan;
  plan.origin_uid = 0xfeedull;

  repair::PlanEntry heap;
  heap.is_global = false;
  heap.site_key = "pool.c:42|main.c:7";
  heap.action = repair::PlanAction::kPadSlots;
  heap.pad_to = 128;
  heap.alignment = 64;
  heap.slot_stride = 24;
  heap.object_size = 24;
  heap.expected_eliminated = 4321;
  heap.evidence.push_back({0, 3, 900});
  heap.evidence.push_back({24, repair::kSharedOwner, 555});
  plan.entries.push_back(heap);

  repair::PlanEntry global;
  global.is_global = true;
  global.site_key = "grid \"quoted\"";
  global.action = repair::PlanAction::kSplitFields;
  global.pad_to = 64;
  global.alignment = 64;
  global.slot_stride = 0;
  global.object_size = 512;
  global.expected_eliminated = 77;
  plan.entries.push_back(global);
  return plan;
}

// Unwraps the frame layer and hands back the verified payload.
std::string plan_frame_payload(const std::string& frame_bytes) {
  wire::Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::parse_frame(frame_bytes, &frame, &consumed),
            wire::FrameError::kOk);
  EXPECT_EQ(frame.type, wire::FrameType::kRepairPlan);
  EXPECT_EQ(consumed, frame_bytes.size());
  return frame.payload;
}

TEST(PlanCodec, RoundTripPreservesEverything) {
  const repair::RepairPlan plan = sample_plan();
  repair::RepairPlan decoded;
  ASSERT_TRUE(repair::decode_plan_payload(
      plan_frame_payload(repair::encode_plan_frame(plan)), &decoded));
  EXPECT_EQ(decoded, plan);
}

TEST(PlanCodec, EmptyPlanRoundTrips) {
  repair::RepairPlan decoded;
  ASSERT_TRUE(repair::decode_plan_payload(
      plan_frame_payload(repair::encode_plan_frame(repair::RepairPlan{})),
      &decoded));
  EXPECT_EQ(decoded, repair::RepairPlan{});
}

TEST(PlanCodec, SkipsFieldsFromNewerClients) {
  // A future planner appends unknown top-level fields and an entry with an
  // action this build does not know. Decode must skip both and still
  // recover today's plan exactly.
  const repair::RepairPlan plan = sample_plan();
  std::string payload =
      plan_frame_payload(repair::encode_plan_frame(plan));

  wire::FieldWriter top(&payload);
  top.u64(600, 123456789);
  top.str(601, "directive from the future");
  std::string entry;
  wire::FieldWriter ew(&entry);
  ew.u64(1, 1);               // is_global
  ew.str(2, "future_site");   // site_key
  ew.u64(3, 99);              // action nobody implements yet
  top.bytes(2, entry);

  repair::RepairPlan decoded;
  ASSERT_TRUE(repair::decode_plan_payload(payload, &decoded));
  EXPECT_EQ(decoded, plan);
}

TEST(PlanCodec, RejectsMalformedPayload) {
  std::string payload =
      plan_frame_payload(repair::encode_plan_frame(sample_plan()));
  payload.resize(payload.size() - 5);  // tear the final field
  repair::RepairPlan decoded;
  EXPECT_FALSE(repair::decode_plan_payload(payload, &decoded));
}

TEST(PlanCodec, FrameCorruptionIsCaught) {
  std::string frame = repair::encode_plan_frame(sample_plan());
  frame[wire::kFrameHeaderSize + 3] ^= 0x40;  // flip a payload bit
  wire::Frame out;
  std::size_t consumed = 0;
  EXPECT_NE(wire::parse_frame(frame, &out, &consumed),
            wire::FrameError::kOk);
}

TEST(PlanCodec, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/predator_test.plan";
  const repair::RepairPlan plan = sample_plan();
  ASSERT_TRUE(repair::save_plan_file(path, plan));
  repair::RepairPlan loaded;
  ASSERT_TRUE(repair::load_plan_file(path, &loaded));
  EXPECT_EQ(loaded, plan);
  ::unlink(path.c_str());
  EXPECT_FALSE(repair::load_plan_file(path, &loaded));  // gone again
}

TEST(Planner, CompilesPadSlotsFromCounterPoolAdvice) {
  // Detect the planted heap defect for real, then check what the planner
  // lowers the advice to: one machine-applicable pad_slots entry keyed by
  // the allocation callsite, with line-offset evidence.
  const repair::RepairTarget* target =
      repair::find_repair_target("counter_pool");
  ASSERT_NE(target, nullptr);
  Session session(repair::detection_session_options());
  repair::RunResult run = target->run(session, nullptr, 4, 1);
  wl::replay_into_session(session, run.traces, 1);
  const Report report = session.report();

  const repair::RepairPlan plan = repair::compile_plan(
      report, advise(report), session.runtime().callsites());
  ASSERT_EQ(plan.entries.size(), 1u);
  const repair::PlanEntry& e = plan.entries[0];
  EXPECT_FALSE(e.is_global);
  EXPECT_EQ(e.site_key, "counter_pool.c:42");
  EXPECT_EQ(e.action, repair::PlanAction::kPadSlots);
  EXPECT_EQ(e.pad_to, 64u);
  EXPECT_EQ(e.slot_stride, 16u);
  EXPECT_GT(e.expected_eliminated, 0u);
  ASSERT_FALSE(e.evidence.empty());
  for (std::size_t i = 1; i < e.evidence.size(); ++i) {
    EXPECT_GE(e.evidence[i - 1].writes, e.evidence[i].writes);
  }
  for (const repair::OffsetEvidence& ev : e.evidence) {
    EXPECT_LT(ev.offset, 64u);
  }
}

TEST(Planner, SkipsUnkeyedAndUnloweredSuggestions) {
  Report report;
  CallsiteTable callsites;
  std::vector<FixSuggestion> suggestions;

  FixSuggestion unkeyed;  // heap object with no callsite: no stable identity
  unkeyed.kind = FixKind::kPadPerThreadSlots;
  unkeyed.object.callsite = kNoCallsite;
  suggestions.push_back(unkeyed);

  FixSuggestion unlowered;  // behavioral advice has no layout directive
  unlowered.kind = FixKind::kReduceWriteSharing;
  unlowered.object.is_global = true;
  unlowered.object.name = "shared_flag";
  suggestions.push_back(unlowered);

  EXPECT_TRUE(
      repair::compile_plan(report, suggestions, callsites).empty());
}

TEST(AllocatorBackend, PadsOnlyThePlannedCallsite) {
  Session session(repair::detection_session_options());
  const CallsiteId planned = session.intern_frames({"hot.c:10"});
  const CallsiteId other = session.intern_frames({"cold.c:20"});

  auto plan = std::make_shared<repair::RepairPlan>();
  repair::PlanEntry e;
  e.site_key = "hot.c:10";
  e.action = repair::PlanAction::kPadSlots;
  e.pad_to = 64;
  plan->entries.push_back(e);
  session.allocator().install_repair_plan(plan);

  void* a = session.alloc(16, planned);
  void* b = session.alloc(16, planned);
  void* c = session.alloc(16, other);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);

  // Padded requests land in the 64-byte size class, so they are also
  // naturally line-aligned; the unplanned site keeps its packed 16 bytes.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  const auto obj_a =
      session.runtime().objects().find(reinterpret_cast<Address>(a));
  const auto obj_c =
      session.runtime().objects().find(reinterpret_cast<Address>(c));
  ASSERT_TRUE(obj_a.has_value());
  ASSERT_TRUE(obj_c.has_value());
  EXPECT_EQ(obj_a->size, 64u);
  EXPECT_EQ(obj_c->size, 16u);

  const PredatorAllocator::Stats st = session.allocator().stats();
  EXPECT_EQ(st.repairs_applied, 2u);
  EXPECT_EQ(st.repair_padding_bytes, 2u * 48u);
}

TEST(RewriteBackend, RetargetsPlantedSlotsAndPreservesResults) {
  ir::GeneratorOptions gopts;
  gopts.segments = 1;
  gopts.allow_intrinsics = false;
  gopts.planted_slots = 4;
  gopts.planted_stride = 16;
  gopts.planted_iters = 8;
  const ir::Module packed = ir::generate_module(0x5105u, gopts);

  ir::Module padded = packed;
  ir::RepairLayout layout;
  layout.base_arg = 0;
  layout.region_offset = 0;
  layout.extent = 4 * 16;
  layout.slot_stride = 16;
  layout.pad_to = 64;
  const ir::RepairRewriteStats rs = ir::apply_repair_rewrite(padded, layout);
  EXPECT_GT(rs.retargeted, 0u);
  EXPECT_EQ(rs.straddling, 0u);

  std::vector<std::int64_t> packed_buf(8, 0);    // 4 slots * 16 B
  std::vector<std::int64_t> padded_buf(32, 0);   // 4 slots * 64 B
  for (std::uint32_t t = 0; t < 4; ++t) {
    const std::string want = "slot" + std::to_string(t);
    const ir::Function* pf = nullptr;
    const ir::Function* qf = nullptr;
    for (const ir::Function& f : packed.functions) {
      if (f.name == want) pf = &f;
    }
    for (const ir::Function& f : padded.functions) {
      if (f.name == want) qf = &f;
    }
    ASSERT_NE(pf, nullptr);
    ASSERT_NE(qf, nullptr);

    ir::Interpreter packed_interp(nullptr);
    const std::int64_t packed_args[2] = {
        reinterpret_cast<std::intptr_t>(packed_buf.data()), 8};
    const ir::ExecResult pr = packed_interp.run(packed, *pf, packed_args, t);

    // The rewritten kernel must touch only its own padded slot ...
    const Address base = reinterpret_cast<Address>(padded_buf.data());
    ir::Interpreter padded_interp(nullptr);
    padded_interp.set_touch_observer(
        [&](Address a, std::uint32_t width, AccessType, ThreadId) {
          EXPECT_GE(a, base + t * 64u);
          EXPECT_LE(a + width, base + t * 64u + 16u);
        });
    const std::int64_t padded_args[2] = {
        reinterpret_cast<std::intptr_t>(padded_buf.data()), 32};
    const ir::ExecResult qr = padded_interp.run(padded, *qf, padded_args, t);

    // ... and compute exactly what the packed layout computed.
    ASSERT_FALSE(pr.step_limit_exceeded);
    ASSERT_FALSE(qr.step_limit_exceeded);
    EXPECT_EQ(qr.return_value, pr.return_value);
  }
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (std::uint32_t w = 0; w < 2; ++w) {
      EXPECT_EQ(padded_buf[t * 8 + w], packed_buf[t * 2 + w]);
    }
  }
}

// The tentpole acceptance: both planted targets — one per backend — must
// close the loop with >= 90% simulated invalidation drop, no surviving
// finding on the repaired sites, and a bit-identical checksum.
TEST(ClosedLoop, CounterPoolIsRepaired) {
  const repair::RepairTarget* target =
      repair::find_repair_target("counter_pool");
  ASSERT_NE(target, nullptr);
  const repair::RepairOutcome out = repair::run_repair_loop(*target);
  EXPECT_GT(out.baseline_invalidations, 0u);
  EXPECT_GE(out.drop_pct(), 0.9);
  EXPECT_EQ(out.repaired_site_findings, 0u);
  EXPECT_TRUE(out.checksums_match());
  EXPECT_TRUE(out.repaired(0.9));
}

TEST(ClosedLoop, GlobalGridIsRepaired) {
  const repair::RepairTarget* target =
      repair::find_repair_target("global_grid");
  ASSERT_NE(target, nullptr);
  const repair::RepairOutcome out = repair::run_repair_loop(*target);
  EXPECT_GT(out.baseline_invalidations, 0u);
  EXPECT_GE(out.drop_pct(), 0.9);
  EXPECT_EQ(out.repaired_site_findings, 0u);
  EXPECT_TRUE(out.checksums_match());
  EXPECT_TRUE(out.repaired(0.9));
}

TEST(CollectorPlans, MergesIngestedPlansPerSite) {
  Collector collector;

  repair::RepairPlan weak;
  weak.origin_uid = 11;
  repair::PlanEntry e;
  e.site_key = "hot.c:10";
  e.action = repair::PlanAction::kPadSlots;
  e.pad_to = 64;
  e.expected_eliminated = 10;
  weak.entries.push_back(e);

  repair::RepairPlan strong = weak;
  strong.origin_uid = 22;
  strong.entries[0].pad_to = 128;
  strong.entries[0].expected_eliminated = 500;
  repair::PlanEntry other;
  other.is_global = true;
  other.site_key = "grid";
  strong.entries.push_back(other);

  ASSERT_TRUE(collector.ingest_frame(repair::encode_plan_frame(weak)));
  ASSERT_TRUE(collector.ingest_frame(repair::encode_plan_frame(strong)));
  EXPECT_EQ(collector.stats().plans_ingested, 2u);

  const repair::RepairPlan merged = collector.merged_plan();
  ASSERT_EQ(merged.entries.size(), 2u);
  const repair::PlanEntry* site = merged.find(false, "hot.c:10");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->pad_to, 128u);  // best-evidenced directive wins
  EXPECT_NE(merged.find(true, "grid"), nullptr);
}

TEST(Transport, ReclaimsStaleSocketPath) {
  const std::string path = testing::TempDir() + "/predator_stale.sock";
  ::unlink(path.c_str());

  // A crashed daemon leaves a bound-but-dead socket inode behind.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int dead = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(dead, 0);
  ASSERT_EQ(::bind(dead, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ::close(dead);  // path persists; connect() would now be refused

  const int fd = listen_unix(path);
  EXPECT_GE(fd, 0);
  if (fd >= 0) ::close(fd);
  ::unlink(path.c_str());
}

TEST(Transport, RefusesToUnseatLiveListener) {
  const std::string path = testing::TempDir() + "/predator_live.sock";
  ::unlink(path.c_str());
  const int first = listen_unix(path);
  ASSERT_GE(first, 0);
  EXPECT_LT(listen_unix(path), 0);  // someone is serving here
  // The live listener must still be reachable afterwards.
  const int probe = connect_unix(path);
  EXPECT_GE(probe, 0);
  if (probe >= 0) ::close(probe);
  ::close(first);
  ::unlink(path.c_str());
}

TEST(Transport, RefusesNonSocketPath) {
  const std::string path = testing::TempDir() + "/predator_not_a.sock";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("precious user data", f);
  std::fclose(f);

  EXPECT_LT(listen_unix(path), 0);
  std::FILE* still = std::fopen(path.c_str(), "rb");  // file untouched
  EXPECT_NE(still, nullptr);
  if (still != nullptr) std::fclose(still);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace pred
