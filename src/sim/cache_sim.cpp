#include "sim/cache_sim.hpp"

#include <bit>

namespace pred {

std::uint64_t CacheSim::on_access(std::uint32_t core, Address addr,
                                  AccessType type) {
  PRED_CHECK(core < config_.num_cores);
  const std::size_t line = addr / config_.line_size;
  LineState& st = lines_[line];
  const std::uint64_t me = 1ull << core;

  ++stats_.accesses;
  std::uint64_t cost = 0;

  if (type == AccessType::kRead) {
    if (st.owner == static_cast<std::int32_t>(core) || (st.sharers & me)) {
      ++stats_.hits;
      cost = config_.hit_cost;
    } else if (st.owner >= 0) {
      // Dirty in another core's cache: ownership downgrade + transfer.
      ++stats_.coherence_misses;
      cost = config_.coherence_miss_cost;
      st.sharers |= (1ull << st.owner) | me;
      st.owner = -1;
    } else if (!st.touched) {
      ++stats_.cold_misses;
      cost = config_.cold_miss_cost;
      st.sharers |= me;
    } else {
      ++stats_.shared_fetches;
      cost = config_.shared_fetch_cost;
      st.sharers |= me;
    }
  } else {  // write
    if (st.owner == static_cast<std::int32_t>(core)) {
      ++stats_.hits;
      cost = config_.hit_cost;
    } else {
      const bool remote_dirty =
          st.owner >= 0 && st.owner != static_cast<std::int32_t>(core);
      const std::uint64_t remote_sharers = st.sharers & ~me;
      const int killed =
          std::popcount(remote_sharers) + (remote_dirty ? 1 : 0);
      stats_.invalidations_sent += static_cast<std::uint64_t>(killed);
      st.invalidations += static_cast<std::uint64_t>(killed);

      if (remote_dirty) {
        ++stats_.coherence_misses;
        cost = config_.coherence_miss_cost;
      } else if (!st.touched) {
        ++stats_.cold_misses;
        cost = config_.cold_miss_cost;
      } else if (killed > 0) {
        // Upgrade: line present somewhere clean; pay invalidation traffic.
        ++stats_.shared_fetches;
        cost = config_.shared_fetch_cost;
      } else if (st.sharers & me) {
        ++stats_.hits;  // exclusive upgrade of our own clean copy
        cost = config_.hit_cost;
      } else {
        ++stats_.cold_misses;
        cost = config_.cold_miss_cost;
      }
      cost += static_cast<std::uint64_t>(killed) * config_.invalidation_cost;
      st.sharers = 0;
      st.owner = static_cast<std::int32_t>(core);
    }
  }

  st.touched = true;
  core_cycles_[core] += cost;
  stats_.total_cycles += cost;
  return cost;
}

std::uint64_t CacheSim::line_invalidations(Address addr) const {
  const auto it = lines_.find(addr / config_.line_size);
  return it == lines_.end() ? 0 : it->second.invalidations;
}

std::uint64_t CacheSim::invalidations_in(Address start,
                                         std::size_t size) const {
  if (size == 0) return 0;
  const std::size_t first = start / config_.line_size;
  const std::size_t last = (start + size - 1) / config_.line_size;
  std::uint64_t total = 0;
  for (std::size_t line = first; line <= last; ++line) {
    const auto it = lines_.find(line);
    if (it != lines_.end()) total += it->second.invalidations;
  }
  return total;
}

}  // namespace pred
