#include "instrument/analysis/generator.hpp"

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace pred::ir {

namespace {

class FunctionGen {
 public:
  FunctionGen(Xorshift64& rng, std::string name, const GeneratorOptions& opts)
      : rng_(rng), opts_(opts), b_(std::move(name), /*num_args=*/2) {
    // A small pool of (offset, size) slots shared by every invariant access
    // in the function: repeats are what give the dedup and merging passes
    // something to find.
    const std::uint32_t pool = 3 + rng_.next_below(4);
    for (std::uint32_t i = 0; i < pool; ++i) {
      static constexpr std::uint32_t kSizes[] = {1, 2, 4, 8};
      const std::uint32_t size = kSizes[rng_.next_below(4)];
      std::int64_t off =
          8 * static_cast<std::int64_t>(rng_.next_below(opts_.max_offset_words));
      if (size < 8) off += size * rng_.next_below(8 / size);  // stay in-word
      slots_.push_back({off, size});
    }
  }

  Function build(std::uint32_t segments) {
    emit_access_run(opts_.accesses_per_block);
    for (std::uint32_t s = 0; s < segments; ++s) {
      switch (rng_.next_below(4)) {
        case 0:
          emit_diamond();
          break;
        case 1:
          emit_early_exit_loop();
          break;
        default:
          emit_loop();
          break;
      }
    }
    if (opts_.allow_intrinsics && rng_.next_below(2) == 0) {
      const Reg len =
          b_.const_val(8 * (1 + static_cast<std::int64_t>(rng_.next_below(3))));
      b_.mem_set(buf(), len, static_cast<std::uint8_t>(rng_.next_below(256)));
    }
    b_.ret(b_.const_val(0));
    return b_.take();
  }

 private:
  struct Slot {
    std::int64_t offset;
    std::uint32_t size;
  };

  Reg buf() const { return b_.arg(0); }
  Reg bound() const { return b_.arg(1); }

  /// One access at a pooled invariant address, through a randomly chosen
  /// addressing idiom. All three idioms compute the identical address, so
  /// value numbering must treat them as one.
  void emit_invariant_access() {
    const Slot slot = slots_[rng_.next_below(slots_.size())];
    Reg base = buf();
    std::int64_t off = slot.offset;
    switch (rng_.next_below(3)) {
      case 0:  // direct: [buf + off]
        break;
      case 1: {  // aliased register: t = buf; [t + off]
        const Reg t = b_.fresh_reg();
        b_.move(t, base);
        base = t;
        break;
      }
      default: {  // offset split into the register: t = buf + k; [t + off-k]
        const std::int64_t k =
            off > 0 ? static_cast<std::int64_t>(
                          rng_.next_below(static_cast<std::uint64_t>(off) + 1))
                    : 0;
        base = b_.add(base, b_.const_val(k));
        off -= k;
        break;
      }
    }
    if (rng_.next_below(2) == 0) {
      b_.store(base, b_.const_val(static_cast<std::int64_t>(rng_.next_below(64))),
               off, slot.size);
    } else {
      b_.load(base, off, slot.size);
    }
  }

  /// One access whose address depends on the induction variable — never
  /// hoistable, keeps the pruned loops honest.
  void emit_varying_access(Reg i) {
    const Reg scaled = b_.mul(i, b_.const_val(8));
    const Reg addr = b_.add(buf(), scaled);
    const std::int64_t off = 8 * static_cast<std::int64_t>(rng_.next_below(2));
    if (rng_.next_below(2) == 0) {
      b_.store(addr, b_.const_val(static_cast<std::int64_t>(rng_.next_below(64))),
               off, 8);
    } else {
      b_.load(addr, off, 8);
    }
  }

  void emit_access_run(std::uint32_t count, Reg i = kNoReg) {
    for (std::uint32_t a = 0; a < count; ++a) {
      if (i != kNoReg && rng_.next_below(4) == 0) {
        emit_varying_access(i);
      } else {
        emit_invariant_access();
      }
    }
  }

  /// Canonical counted loop: preheader (tail of the current block), a
  /// header testing `i < n`, a single body/latch block stepping i by a
  /// constant, and an exit that becomes the new current block.
  void emit_loop() {
    const Reg i = b_.fresh_reg();
    b_.move(i, b_.const_val(0));
    const std::uint32_t header = b_.new_block();
    const std::uint32_t body = b_.new_block();
    const std::uint32_t exit = b_.new_block();
    b_.br(header);

    b_.set_block(header);
    b_.cond_br(b_.cmp_lt(i, bound()), body, exit);

    b_.set_block(body);
    emit_access_run(opts_.accesses_per_block, i);
    const Reg step =
        b_.const_val(1 + static_cast<std::int64_t>(rng_.next_below(3)));
    b_.move(i, b_.add(i, step));
    b_.br(header);

    b_.set_block(exit);
  }

  /// Counted loop whose latch is a *conditional* branch: after stepping i,
  /// the body may leave the loop early when a runtime property of i holds.
  /// The header still bounds the loop (i < n), so execution terminates, but
  /// the trip count is NOT ceil((n - i0) / step) — batching must reject this
  /// shape or it over-delivers.
  void emit_early_exit_loop() {
    const Reg i = b_.fresh_reg();
    b_.move(i, b_.const_val(0));
    const std::uint32_t header = b_.new_block();
    const std::uint32_t body = b_.new_block();
    const std::uint32_t exit = b_.new_block();
    b_.br(header);

    b_.set_block(header);
    b_.cond_br(b_.cmp_lt(i, bound()), body, exit);

    b_.set_block(body);
    emit_access_run(opts_.accesses_per_block, i);
    const Reg step =
        b_.const_val(1 + static_cast<std::int64_t>(rng_.next_below(3)));
    b_.move(i, b_.add(i, step));
    const Reg k =
        b_.const_val(3 + static_cast<std::int64_t>(rng_.next_below(4)));
    const Reg leave = b_.cmp_eq(b_.rem(i, k), b_.const_val(0));
    b_.cond_br(leave, exit, header);

    b_.set_block(exit);
  }

  /// Diamond picked by a runtime property of n (both arms are live across
  /// inputs, so pruning cannot treat either as dead).
  void emit_diamond() {
    const Reg k =
        b_.const_val(2 + static_cast<std::int64_t>(rng_.next_below(3)));
    const Reg cond = b_.cmp_eq(b_.rem(bound(), k), b_.const_val(0));
    const std::uint32_t then_bb = b_.new_block();
    const std::uint32_t else_bb = b_.new_block();
    const std::uint32_t join = b_.new_block();
    b_.cond_br(cond, then_bb, else_bb);

    b_.set_block(then_bb);
    emit_access_run(opts_.accesses_per_block);
    b_.br(join);

    b_.set_block(else_bb);
    emit_access_run(opts_.accesses_per_block);
    b_.br(join);

    b_.set_block(join);
  }

  static constexpr Reg kNoReg = 0xffffffffu;

  Xorshift64& rng_;
  const GeneratorOptions& opts_;
  FunctionBuilder b_;
  std::vector<Slot> slots_;
};

}  // namespace

Module generate_module(std::uint64_t seed, const GeneratorOptions& opts) {
  Xorshift64 rng(seed ^ 0xd1b54a32d192ed03ull);
  Module m;
  const std::uint32_t functions = 1 + static_cast<std::uint32_t>(
                                          rng.next_below(2));
  for (std::uint32_t f = 0; f < functions; ++f) {
    const std::string name = f == 0 ? "gen_main" : "gen_aux";
    const std::uint32_t segments =
        f == 0 ? opts.segments : 1 + static_cast<std::uint32_t>(
                                         rng.next_below(2));
    FunctionGen gen(rng, name, opts);
    m.functions.push_back(gen.build(segments));
  }
  const std::string err = verify(m);
  PRED_CHECK(err.empty());
  return m;
}

}  // namespace pred::ir
