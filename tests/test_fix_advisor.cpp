// Tests for the fix advisor (the paper's Section 6 "Suggest Fixes"
// extension): each access-pattern shape must map to the right remedy, with
// end-to-end checks against real workload reports.
#include <gtest/gtest.h>

#include "advice/fix_advisor.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

SessionOptions options() {
  SessionOptions o;
  o.heap_size = 32 * 1024 * 1024;
  return o;
}

std::vector<FixSuggestion> advise_workload(const char* name,
                                           std::size_t offset = 0) {
  Session session(options());
  const wl::Workload* w = wl::find_workload(name);
  EXPECT_NE(w, nullptr);
  wl::Params p;
  p.threads = 8;
  p.offset = offset;
  w->run_replay(session, p);
  return advise(session.report());
}

const FixSuggestion* find_kind(const std::vector<FixSuggestion>& v,
                               FixKind kind) {
  for (const auto& s : v) {
    if (s.kind == kind) return &s;
  }
  return nullptr;
}

TEST(FixAdvisor, EmptyReportYieldsNoFixes) {
  Report empty;
  EXPECT_TRUE(advise(empty).empty());
  EXPECT_EQ(format_suggestions({}), "No fixes to suggest.\n");
}

TEST(FixAdvisor, HistogramGetsSlotPadding) {
  const auto fixes = advise_workload("histogram");
  ASSERT_FALSE(fixes.empty());
  const FixSuggestion* pad = find_kind(fixes, FixKind::kPadPerThreadSlots);
  ASSERT_NE(pad, nullptr) << format_suggestions(fixes);
  // thread_arg_t is 24 bytes: the advisor should infer the slot stride.
  EXPECT_EQ(pad->slot_stride, 24u);
  EXPECT_GE(pad->threads_involved, 2u);
  EXPECT_NE(pad->prescription.find("pad every slot"), std::string::npos);
}

TEST(FixAdvisor, MysqlGetsSlotPaddingWithEightByteStride) {
  const auto fixes = advise_workload("mysql");
  const FixSuggestion* pad = find_kind(fixes, FixKind::kPadPerThreadSlots);
  ASSERT_NE(pad, nullptr) << format_suggestions(fixes);
  EXPECT_EQ(pad->slot_stride, 8u);
}

TEST(FixAdvisor, LatentLinearRegressionGetsAlignmentPin) {
  const auto fixes = advise_workload("linear_regression", /*offset=*/0);
  const FixSuggestion* align = find_kind(fixes, FixKind::kAlignObject);
  ASSERT_NE(align, nullptr) << format_suggestions(fixes);
  EXPECT_NE(align->rationale.find("predicted"), std::string::npos);
}

TEST(FixAdvisor, TrueSharingGetsNoLayoutFix) {
  const auto fixes = advise_workload("memcached");
  const FixSuggestion* ts = find_kind(fixes, FixKind::kReduceWriteSharing);
  ASSERT_NE(ts, nullptr) << format_suggestions(fixes);
  EXPECT_NE(ts->prescription.find("true sharing"), std::string::npos);
  // And no false-sharing layout fix should be proposed for memcached.
  EXPECT_EQ(find_kind(fixes, FixKind::kPadPerThreadSlots), nullptr);
}

TEST(FixAdvisor, ChunkBoundaryArrayGetsWidening) {
  const auto fixes = advise_workload("streamcluster");
  // switch_membership: big per-thread chunks meeting at boundary lines.
  const FixSuggestion* widen = find_kind(fixes, FixKind::kWidenElements);
  ASSERT_NE(widen, nullptr) << format_suggestions(fixes);
  EXPECT_GT(widen->slot_stride, 64u);
}

TEST(FixAdvisor, SuggestionsRankedByImpact) {
  Session session(options());
  const wl::Workload* hist = wl::find_workload("histogram");
  const wl::Workload* wc = wl::find_workload("word_count");
  wl::Params p;
  p.threads = 8;
  hist->run_replay(session, p);
  wc->run_replay(session, p);
  const auto fixes = advise(session.report());
  ASSERT_GE(fixes.size(), 2u);
  for (std::size_t i = 1; i < fixes.size(); ++i) {
    EXPECT_GE(fixes[i - 1].eliminated_invalidations,
              fixes[i].eliminated_invalidations);
  }
}

TEST(FixAdvisor, MinInvalidationFilterDropsNoise) {
  Session session(options());
  const wl::Workload* w = wl::find_workload("word_count");
  wl::Params p;
  p.threads = 8;
  w->run_replay(session, p);
  AdvisorOptions high;
  high.min_invalidations = ~std::uint64_t{0};
  EXPECT_TRUE(advise(session.report(), high).empty());
}

TEST(FixAdvisor, FormattingMentionsEveryFix) {
  const auto fixes = advise_workload("histogram");
  ASSERT_FALSE(fixes.empty());
  const std::string text = format_suggestions(fixes);
  EXPECT_NE(text.find("Fix #1"), std::string::npos);
  EXPECT_NE(text.find("eliminates"), std::string::npos);
  EXPECT_NE(text.find("evidence:"), std::string::npos);
}

// Applying the advised fix must actually clean the observed report: the
// advisor's suggestions correspond to the workloads' fix_mask variants.
TEST(FixAdvisor, AdviceMatchesTheKnownFix) {
  Session before(options());
  const wl::Workload* w = wl::find_workload("histogram");
  wl::Params p;
  p.threads = 8;
  w->run_replay(before, p);
  ASSERT_NE(find_kind(advise(before.report()), FixKind::kPadPerThreadSlots),
            nullptr);

  Session after(options());
  p.fix_mask = ~0u;  // the padding fix the advisor prescribed
  w->run_replay(after, p);
  bool observed_fs = false;
  for (const auto& f : after.report().findings) {
    observed_fs |= f.observed && f.is_false_sharing();
  }
  EXPECT_FALSE(observed_fs);
}

}  // namespace
}  // namespace pred
