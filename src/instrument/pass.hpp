// The instrumentation pass (Sections 2.2 and 2.4.2): decides which loads and
// stores get a runtime call. It runs after any IR "optimization" the program
// author did (our mini-IR programs are written post-optimization, mirroring
// the paper's placement of the pass at the very end of LLVM's pipeline) and
// applies:
//   * selective per-block dedup — at most one instrumentation per (address
//     expression, access type) per basic block, with correct invalidation
//     when the address register is redefined mid-block;
//   * writes-only mode (detects only write-write false sharing, as SHERIFF);
//   * function black/whitelists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "instrument/ir.hpp"
#include "runtime/config.hpp"

namespace pred::ir {

struct PassOptions {
  InstrumentMode mode = InstrumentMode::kReadsAndWrites;
  /// If non-empty, only these functions are instrumented.
  std::vector<std::string> whitelist;
  /// Functions never instrumented (applied after the whitelist).
  std::vector<std::string> blacklist;
  /// Per-block (address, type) dedup of Section 2.4.2. Disable to measure
  /// its effect (ablation bench).
  bool selective = true;
};

struct PassStats {
  std::uint64_t candidate_accesses = 0;    ///< loads/stores seen
  std::uint64_t instrumented_accesses = 0; ///< marked for runtime calls
  std::uint64_t skipped_duplicates = 0;    ///< removed by per-block dedup
  std::uint64_t skipped_reads = 0;         ///< removed by writes-only mode
  std::uint64_t skipped_functions = 0;     ///< functions excluded by lists
};

/// Marks Instr::instrumented across the module and returns statistics.
PassStats run_instrumentation_pass(Module& module, const PassOptions& options);

}  // namespace pred::ir
