// Two-level NUMA coherence simulator: per-core private caches backed by a
// shared per-socket LLC, with a directory at each line's home socket
// mediating cross-socket MESI coherence and asymmetric local/remote
// latencies. This is the "bigger machine" the paper's predictions (§3) are
// verified against: the flat CacheSim models the 8-core build machine, this
// models the multi-socket fleet box where a latent 128-byte-line or
// cross-socket problem actually manifests.
//
// Design invariant (proven by the differential suite in tests/test_sim.cpp):
// the *coherence event counts* — hits, cold misses, shared fetches,
// coherence misses, invalidations — depend only on core-level MESI state and
// mirror the flat CacheSim branch for branch. Topology changes what events
// COST (a dirty transfer from a remote socket pays remote_factor, a cold
// miss to a remote home node pays remote_factor), never which events occur,
// so a 1-socket NumaCacheSim is bit-identical to the flat simulator — stats,
// per-line invalidations, and per-core cycles alike. The one deliberate
// exception is llc_line_size > line_size: then the directory tracks socket
// presence at LLC-line granularity and a write kills remote-socket copies of
// *sibling* private lines too, which is exactly the larger-line geometry the
// §3.3 double-line prediction convicts.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/cacheline.hpp"
#include "common/check.hpp"
#include "sim/cache_sim.hpp"

namespace pred {

/// How logical cores are numbered onto sockets. The trace executors assign
/// thread t to core t % num_cores, so placement decides whether neighbor
/// threads land on the same socket (compact) or alternate sockets (scatter).
enum class NumaPlacement : std::uint8_t {
  kCompact,  ///< core c sits on socket c / cores_per_socket
  kScatter,  ///< core c sits on socket c % sockets
};

struct NumaConfig {
  std::uint32_t sockets = 2;
  std::uint32_t cores_per_socket = 4;
  /// Latency multiplier for any transfer that crosses the socket
  /// interconnect (dirty-line transfer, remote LLC fetch, remote home-node
  /// memory fetch, invalidation delivered to a remote core).
  double remote_factor = 3.0;
  std::size_t line_size = 64;      ///< private-cache line size
  /// Per-socket LLC line size; must be a multiple of line_size. When larger
  /// than line_size the directory operates at this coarser grain: a write
  /// invalidates remote sockets' copies of every private line inside the
  /// LLC line — adjacent-line false sharing that a 64B-line machine never
  /// shows.
  std::size_t llc_line_size = 64;
  NumaPlacement placement = NumaPlacement::kCompact;
  double clock_ghz = 2.33;

  // Local-case cycle costs, deliberately identical to SimConfig's defaults
  // so the 1-socket degenerate case reproduces the flat simulator exactly.
  std::uint64_t hit_cost = 1;
  std::uint64_t shared_fetch_cost = 80;     ///< clean copy from the local LLC
  std::uint64_t cold_miss_cost = 250;       ///< local home-node memory fetch
  std::uint64_t coherence_miss_cost = 500;  ///< dirty line owned elsewhere
  std::uint64_t invalidation_cost = 100;    ///< per remote copy killed

  std::uint32_t total_cores() const { return sockets * cores_per_socket; }
  std::uint32_t socket_of(std::uint32_t core) const {
    return placement == NumaPlacement::kCompact ? core / cores_per_socket
                                                : core % sockets;
  }
};

/// Flat SimStats plus the topology-only counters. The base fields obey the
/// flat-equivalence invariant; the extras record how much of the traffic
/// crossed the socket interconnect.
struct NumaStats : SimStats {
  std::uint64_t remote_coherence_misses = 0;  ///< dirty owner on another socket
  std::uint64_t remote_shared_fetches = 0;    ///< clean copy only in remote LLC
  std::uint64_t remote_cold_misses = 0;       ///< home node on another socket
  std::uint64_t remote_invalidations_sent = 0;  ///< kills landing cross-socket
  std::uint64_t llc_sibling_invalidations = 0;  ///< coarse-LLC-grain kills on
                                                ///< sibling private lines
  std::uint64_t directory_transitions = 0;    ///< directory state changes
  std::uint64_t directory_invalidations = 0;  ///< socket-level copies dropped

  void add(const NumaStats& o) {
    SimStats::add(o);
    remote_coherence_misses += o.remote_coherence_misses;
    remote_shared_fetches += o.remote_shared_fetches;
    remote_cold_misses += o.remote_cold_misses;
    remote_invalidations_sent += o.remote_invalidations_sent;
    llc_sibling_invalidations += o.llc_sibling_invalidations;
    directory_transitions += o.directory_transitions;
    directory_invalidations += o.directory_invalidations;
  }
};

class NumaCacheSim {
 public:
  using Stats = NumaStats;

  /// Bitmask over up to kMaxCores cores (the flat simulator's single
  /// std::uint64_t caps out at 64; big-machine interleavings need 256+).
  static constexpr std::uint32_t kMaxCores = 512;
  struct CoreMask {
    std::array<std::uint64_t, kMaxCores / 64> words{};
    bool test(std::uint32_t c) const {
      return (words[c / 64] >> (c % 64)) & 1ull;
    }
    void set(std::uint32_t c) { words[c / 64] |= 1ull << (c % 64); }
    void clear() { words.fill(0); }
    bool any() const {
      for (auto w : words) {
        if (w != 0) return true;
      }
      return false;
    }
  };

  explicit NumaCacheSim(NumaConfig config = {}) : config_(config) {
    PRED_CHECK(config.sockets >= 1 && config.sockets <= 16);
    PRED_CHECK(config.cores_per_socket >= 1);
    PRED_CHECK(config.total_cores() <= kMaxCores);
    PRED_CHECK(config.line_size > 0);
    PRED_CHECK(config.llc_line_size >= config.line_size &&
               config.llc_line_size % config.line_size == 0);
    PRED_CHECK(config.remote_factor >= 1.0);
    core_cycles_.assign(config.total_cores(), 0);
  }

  /// Applies one access by `core`; accrues cycles to that core and returns
  /// the access's modeled cost.
  std::uint64_t on_access(std::uint32_t core, Address addr, AccessType type);

  const NumaStats& stats() const { return stats_; }
  const NumaConfig& config() const { return config_; }
  std::uint32_t num_cores() const { return config_.total_cores(); }

  std::uint64_t max_core_cycles() const {
    std::uint64_t m = 0;
    for (auto c : core_cycles_) m = std::max(m, c);
    return m;
  }
  std::uint64_t core_cycles(std::uint32_t core) const {
    return core_cycles_[core];
  }
  double modeled_seconds() const {
    return static_cast<double>(max_core_cycles()) / (config_.clock_ghz * 1e9);
  }

  /// Invalidations sent for the private line containing `addr`.
  std::uint64_t line_invalidations(Address addr) const;
  /// Sum of per-line invalidations over every line overlapping
  /// [start, start + size).
  std::uint64_t invalidations_in(Address start, std::size_t size) const;

  /// Per-line invalidations that were delivered to a core on a different
  /// socket than the writer — the remote share of line_invalidations().
  std::uint64_t line_remote_invalidations(Address addr) const;
  std::uint64_t remote_invalidations_in(Address start, std::size_t size) const;

  /// Every line the simulator has seen, for hot-line reporting. Returns
  /// (line_base_address, invalidations, remote_invalidations) tuples.
  struct HotLine {
    Address line_start = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t remote_invalidations = 0;
  };
  std::vector<HotLine> hottest_lines(std::size_t top_k) const;

  /// Debug introspection for the directory-protocol property tests: the
  /// full core- and socket-level state of the line containing `addr`.
  struct LineProbe {
    std::vector<std::uint32_t> sharer_cores;
    std::int32_t owner_core = -1;
    std::uint32_t socket_copies = 0;  ///< directory mask (LLC-line grain)
    std::int32_t owner_socket = -1;   ///< socket of the dirty owner, or -1
    bool touched = false;
    std::uint64_t invalidations = 0;
  };
  std::optional<LineProbe> probe_line(Address addr) const;

  void reset() {
    lines_.clear();
    dirs_.clear();
    stats_ = NumaStats{};
    core_cycles_.assign(config_.total_cores(), 0);
  }

 private:
  struct LineState {
    CoreMask sharers;         ///< cores with a clean copy
    std::int32_t owner = -1;  ///< core holding the line Modified, or -1
    bool touched = false;
    std::uint64_t invalidations = 0;
    std::uint64_t remote_invalidations = 0;
  };
  /// Directory entry at the LLC line's home socket.
  struct DirState {
    std::uint32_t socket_copies = 0;  ///< sockets holding any copy
    std::int32_t owner_socket = -1;   ///< socket with the dirty copy, or -1
  };

  std::uint32_t home_socket(std::size_t llc_index) const {
    return static_cast<std::uint32_t>(llc_index % config_.sockets);
  }
  std::uint64_t scaled(std::uint64_t cost, bool remote) const {
    return remote ? static_cast<std::uint64_t>(
                        static_cast<double>(cost) * config_.remote_factor)
                  : cost;
  }
  /// Updates the directory entry, counting a transition when it changes.
  void dir_update(DirState& dir, std::uint32_t socket_copies,
                  std::int32_t owner_socket);
  /// Kills remote-socket core copies of the sibling private lines sharing
  /// the written line's LLC line (only reachable when llc_line_size >
  /// line_size). Returns the invalidation cost incurred by the writer.
  std::uint64_t kill_llc_siblings(std::size_t written_line,
                                  std::size_t llc_index, std::uint32_t socket);

  NumaConfig config_;
  std::unordered_map<std::size_t, LineState> lines_;
  std::unordered_map<std::size_t, DirState> dirs_;
  NumaStats stats_;
  std::vector<std::uint64_t> core_cycles_;
};

}  // namespace pred
