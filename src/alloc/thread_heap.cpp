#include "alloc/thread_heap.hpp"

namespace pred {

Address ThreadHeap::allocate(std::size_t size) {
  if (size == 0) size = 1;
  const std::size_t cls = SizeClasses::index_for(size);
  if (cls == SizeClasses::kNumClasses) {
    // Large: dedicated line-aligned span, owned like any other carving.
    const Address span = region_.allocate_span(size);
    if (span != 0 && ownership_ != nullptr) {
      ownership_->record_span(span, size, owner_);
    }
    return span;
  }
  auto& list = free_lists_[cls];
  if (!list.empty()) {
    Address a = list.back();
    list.pop_back();
    return a;
  }
  const std::size_t obj_size = SizeClasses::size_of(cls);
  if (bump_[cls] + obj_size > bump_end_[cls] || bump_[cls] == 0) {
    const std::size_t chunk = std::max(kChunkSize, obj_size);
    Address span = region_.allocate_span(chunk);
    if (span == 0) return 0;
    if (ownership_ != nullptr) ownership_->record_span(span, chunk, owner_);
    chunk_bytes_ += chunk;
    bump_[cls] = span;
    bump_end_[cls] = span + chunk;
  }
  Address a = bump_[cls];
  bump_[cls] += obj_size;
  return a;
}

void ThreadHeap::deallocate(Address addr, std::size_t size) {
  const std::size_t cls = SizeClasses::index_for(size);
  if (cls == SizeClasses::kNumClasses) {
    return;  // large spans are not recycled (bump region)
  }
  free_lists_[cls].push_back(addr);
}

}  // namespace pred
