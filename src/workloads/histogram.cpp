// Phoenix histogram: the first of the paper's two previously-unknown false
// sharing discoveries (Table 1, histogram-pthread.c:213). Multiple threads
// simultaneously update different fields of the same heap-allocated
// thread_arg_t array; the 24-byte elements pack 2-3 per cache line, so
// neighboring threads' red/green/blue counters falsely share. Padding the
// struct to a cache line is the paper's fix (~46% improvement).
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

struct ThreadArg {           // 24 bytes: 2.66 per 64-byte line
  std::uint64_t red;
  std::uint64_t green;
  std::uint64_t blue;
};
static_assert(sizeof(ThreadArg) == 24);

class Histogram final : public WorkloadImpl<Histogram> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "histogram",
        .suite = "phoenix",
        .sites = {{.where = "histogram-pthread.c:213",
                   .needs_prediction = false,
                   .newly_discovered = true,
                   .paper_improvement_pct = 46.22}},
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t pixels_per_thread = 6000 * p.scale;
    const std::size_t stride = p.site_fixed(0) ? 64 : sizeof(ThreadArg);

    char* base = static_cast<char*>(
        h.alloc(stride * n, {"histogram-pthread.c:213"}));
    PRED_CHECK(base != nullptr);
    for (std::uint32_t t = 0; t < n; ++t) {
      auto* a = reinterpret_cast<ThreadArg*>(base + stride * t);
      a->red = a->green = a->blue = 0;
    }

    // Each thread scans its private pixel chunk, bumping its own counters.
    std::vector<unsigned char*> chunks(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      chunks[t] = static_cast<unsigned char*>(
          h.alloc(pixels_per_thread * 3, {"histogram-pthread.c:pixels"}));
      PRED_CHECK(chunks[t] != nullptr);
      for (std::uint64_t i = 0; i < pixels_per_thread * 3; ++i) {
        chunks[t][i] = static_cast<unsigned char>(rng.next());
      }
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      auto* a = reinterpret_cast<ThreadArg*>(base + stride * t);
      unsigned char* px = chunks[t];
      std::uint64_t lr = 0, lg = 0, lb = 0;
      for (std::uint64_t i = 0; i < pixels_per_thread; ++i) {
        sink.think(220);  // pixel decode + bucket arithmetic
        sink.read(&px[3 * i], 1);
        lr += px[3 * i];
        sink.read(&px[3 * i + 1], 1);
        lg += px[3 * i + 1];
        sink.read(&px[3 * i + 2], 1);
        lb += px[3 * i + 2];
        if ((i & 15) == 15) {
          // The buggy pattern: RMW of adjacent per-thread counters in a
          // shared array, issued every few pixels.
          sink.read(&a->red, 8);
          a->red += lr;
          sink.write(&a->red, 8);
          sink.read(&a->green, 8);
          a->green += lg;
          sink.write(&a->green, 8);
          sink.read(&a->blue, 8);
          a->blue += lb;
          sink.write(&a->blue, 8);
          lr = lg = lb = 0;
        }
      }
    });

    Result res;
    for (std::uint32_t t = 0; t < n; ++t) {
      auto* a = reinterpret_cast<ThreadArg*>(base + stride * t);
      res.checksum ^= a->red + a->green * 3 + a->blue * 5;
    }
    return res;
  }
};

}  // namespace

std::unique_ptr<Workload> make_histogram() {
  return std::make_unique<Histogram>();
}

}  // namespace pred::wl
